//! dm-server: a TCP query service over one [`DirectMeshDb`].
//!
//! Architecture — a non-blocking readiness event loop in front of a
//! bounded execute pool:
//!
//! * one **reactor thread** (the [`Server::serve`] caller) multiplexes
//!   *all* connections through a vendored epoll/poll shim
//!   ([`polling::Poller`]): it accepts, reads whatever bytes each socket
//!   has, reassembles frames incrementally
//!   ([`dm_net::frame::FrameAssembler`]), decodes requests, and drains
//!   per-connection write queues — never blocking on any one peer,
//! * a **bounded worker pool** executes requests: the reactor hands a
//!   worker one `(connection, request)` job at a time and the worker
//!   hands back a pre-encoded response frame, waking the reactor via
//!   [`polling::Poller::notify`]. Decode (reactor) → execute (worker) →
//!   encode (worker) → write (reactor) are decoupled stages, so a query
//!   worker never blocks on a slow socket,
//! * **pipelining**: a connection may send many requests back-to-back;
//!   the reactor queues up to `max_pipeline` decoded requests and
//!   dispatches them **strictly serially per connection** (one request on
//!   one worker thread at a time), so responses come back in request
//!   order and the thread-attributed disk-read counter
//!   ([`dm_storage::thread_reads`]) stays exact per request,
//! * **slow-reader defense by byte budget**: responses queue per
//!   connection; a peer that reads too slowly to keep its queue under
//!   `write_budget` bytes is disconnected (counted, typed) — neither the
//!   reactor nor any worker ever wedges on it. A peer that stalls
//!   mid-frame longer than `frame_stall_timeout` is likewise shed,
//! * **admission control**: a global in-flight permit counter; when
//!   `max_inflight` query-class requests are already executing, further
//!   ones get a typed `Overloaded` response (with a retry hint) instead
//!   of queueing unboundedly. Permits are taken at dispatch time on the
//!   reactor, so refusals still come back in request order,
//! * **sessions**: `OpenSession` creates a server-side
//!   [`NavigationSession`]; frames advance it incrementally exactly like
//!   a local walkthrough. Sessions are connection-scoped and bounded;
//!   their state travels with each job and returns with its completion,
//!   preserving the one-request-one-thread attribution contract.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use dm_core::{BoundaryPolicy, DirectMeshDb, FetchCounters, NavigationSession, VdQuery};
use dm_geom::Rect;
use dm_net::frame::{encode_frame, FrameAssembler};
use dm_net::mesh::{
    canonical_flat, canonical_mesh, canonical_mesh_into, MeshResult, ResultTail, WireVertex,
};
use dm_net::proto::{
    ErrorCode, QueryOpts, QueryScope, RegionWireStats, Request, Response, StreamCounters,
};
use dm_net::stream::{
    diff_frames, split_coarse_to_fine, FrameDelta, StreamMode, FIRST_CHUNK_VERTICES,
};
use dm_net::wire::Writer;
use dm_world::{WorldDb, WorldSession};
use polling::{Interest, Poller};

/// What a server instance hosts: one terrain store, or a whole world
/// catalog of regions behind [`WorldDb`]. `Copy` — every worker and the
/// reactor hold the same borrowed handle.
#[derive(Clone, Copy)]
pub enum Host<'db> {
    Single(&'db DirectMeshDb),
    World(&'db WorldDb),
}

/// Reactor poll tick: bounds how stale shutdown/stall checks can get.
const TICK: Duration = Duration::from_millis(25);
/// Poller key reserved for the listener.
const LISTEN_KEY: usize = 0;

/// Tuning knobs for [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads executing requests (the reactor runs besides them).
    pub workers: usize,
    /// Query-class requests allowed to execute concurrently before the
    /// server answers `Overloaded`.
    pub max_inflight: usize,
    /// Bytes of encoded responses one connection may have queued before
    /// it is disconnected as a slow reader.
    pub write_budget: usize,
    /// How long a peer may stall mid-frame (bytes owed, none arriving)
    /// before the connection is shed.
    pub frame_stall_timeout: Duration,
    /// Decoded requests one connection may have waiting for dispatch;
    /// beyond this the reactor stops reading the socket (backpressure).
    pub max_pipeline: usize,
    /// Navigation sessions one connection may hold open.
    pub max_sessions_per_conn: usize,
    /// Retry hint carried by `Overloaded` responses.
    pub retry_after_ms: u64,
    /// After shutdown, how long connections get to finish queued work
    /// and flush before they are force-closed.
    pub drain_grace: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            max_inflight: 8,
            write_budget: 32 << 20,
            frame_stall_timeout: Duration::from_secs(30),
            max_pipeline: 64,
            max_sessions_per_conn: 8,
            retry_after_ms: 50,
            drain_grace: Duration::from_secs(1),
        }
    }
}

/// Counters [`Server::serve`] returns once the server has drained.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Frames successfully received and dispatched.
    pub requests: u64,
    /// Error-class responses sent (bad requests, storage failures, …).
    pub errors: u64,
    /// Requests refused by admission control.
    pub overloaded: u64,
    /// Connections dropped for exceeding their response-queue byte
    /// budget (peer reads too slowly or not at all).
    pub slow_disconnects: u64,
    /// Connections dropped for stalling mid-frame past the deadline.
    pub stalled_disconnects: u64,
    /// Request bytes read off all sockets, framing included.
    pub bytes_in: u64,
    /// Response bytes written to all sockets, framing included.
    pub bytes_out: u64,
    /// Navigation frames answered as delta patches.
    pub delta_frames: u64,
    /// Navigation frames answered in full (monolithic mesh or reset).
    pub full_frames: u64,
}

/// Clonable handle that asks a running [`Server::serve`] call to stop
/// accepting work and drain.
#[derive(Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    pub fn is_shutdown(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Global in-flight permit counter (admission control). Acquired on the
/// reactor at dispatch time, released by the worker after execution.
struct Admission {
    inflight: AtomicUsize,
    max: usize,
}

impl Admission {
    fn try_acquire(&self) -> bool {
        let mut cur = self.inflight.load(Ordering::Acquire);
        loop {
            if cur >= self.max {
                return false;
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    fn release(&self) {
        self.inflight.fetch_sub(1, Ordering::Release);
    }
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    overloaded: AtomicU64,
    slow_disconnects: AtomicU64,
    stalled_disconnects: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    delta_frames: AtomicU64,
    full_frames: AtomicU64,
}

/// State the reactor and all workers share.
struct Shared {
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    admission: Admission,
    counters: Counters,
}

/// Per-session delta-stream state: the previous frame's canonical form
/// (the diff base) plus scratch buffers reused across frames so the
/// per-frame canonicalize/encode path stops reallocating.
struct StreamState {
    /// Sequence number of the last delta-class answer.
    seq: u64,
    /// `prev_*` hold a valid diff base. Cleared by full-frame answers
    /// and by error responses: the delta chain only spans consecutive
    /// delta-mode frames the client provably saw.
    has_prev: bool,
    prev_vertices: Vec<WireVertex>,
    prev_faces: Vec<[u32; 3]>,
    scratch_vertices: Vec<WireVertex>,
    scratch_faces: Vec<[u32; 3]>,
    /// Reused encoder for the delta-vs-full size cutover.
    enc: Writer,
}

impl Default for StreamState {
    fn default() -> StreamState {
        StreamState {
            seq: 0,
            has_prev: false,
            prev_vertices: Vec::new(),
            prev_faces: Vec::new(),
            scratch_vertices: Vec::new(),
            scratch_faces: Vec::new(),
            enc: Writer::new(),
        }
    }
}

impl StreamState {
    fn encoded_len(&mut self, d: &FrameDelta) -> usize {
        self.enc.reset();
        d.encode(&mut self.enc);
        self.enc.len()
    }
}

/// Server-side navigation state: an incremental single-store session,
/// or a world walkthrough that re-queries the catalog each frame and
/// pins the regions it touches.
enum SessionNav<'db> {
    Single(Box<NavigationSession<'db>>),
    World(WorldSession),
}

/// A navigation session plus its wire-stream state.
struct SessionSlot<'db> {
    nav: SessionNav<'db>,
    stream: StreamState,
}

impl SessionSlot<'_> {
    /// Release whatever the session holds on the host (world sessions
    /// pin regions). MUST run on every teardown path — explicit close,
    /// connection drop, and server drain — or eviction wedges.
    fn release(&mut self, host: Host<'_>) {
        if let (SessionNav::World(ws), Host::World(world)) = (&mut self.nav, host) {
            ws.close(world);
        }
    }
}

/// Drop a connection's sessions, releasing their region pins first.
fn release_conn_sessions(host: Host<'_>, state: &mut ConnState<'_>) {
    for slot in state.sessions.values_mut() {
        slot.release(host);
    }
    state.sessions.clear();
}

/// Per-connection state: the navigation sessions this client opened.
/// Travels with each dispatched job (per-connection execution is serial,
/// so exactly one of reactor/worker holds it at any time).
struct ConnState<'db> {
    sessions: HashMap<u64, SessionSlot<'db>>,
    next_session: u64,
    /// Streaming counters reported by `Stats`: byte totals are
    /// snapshotted from the reactor's `Conn` at dispatch time (exact —
    /// per-connection execution is serial), frame counts are maintained
    /// here by the worker.
    counters: StreamCounters,
}

/// One unit of work for the execute pool.
struct Job<'db> {
    token: usize,
    req: Request,
    state: ConnState<'db>,
    /// Whether this job holds an admission permit to release.
    permit: bool,
}

/// A (possibly partial) job result. Chunked answers post one completion
/// per frame *as each is encoded*, so the coarse prefix reaches the wire
/// while the worker is still encoding the fine tail; the connection
/// state rides only the final completion (`state: Some`), which is also
/// what re-opens dispatch for the connection.
struct Completion<'db> {
    token: usize,
    state: Option<ConnState<'db>>,
    frames: Vec<Vec<u8>>,
}

/// Jobs waiting for a worker.
struct JobQueue<'db> {
    state: Mutex<(VecDeque<Job<'db>>, bool)>,
    ready: Condvar,
}

impl<'db> JobQueue<'db> {
    fn new() -> Self {
        JobQueue {
            state: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    fn push(&self, job: Job<'db>) {
        let mut g = self.state.lock().unwrap();
        g.0.push_back(job);
        self.ready.notify_one();
    }

    fn pop(&self) -> Option<Job<'db>> {
        let mut g = self.state.lock().unwrap();
        loop {
            if let Some(job) = g.0.pop_front() {
                return Some(job);
            }
            if g.1 {
                return None;
            }
            g = self.ready.wait(g).unwrap();
        }
    }

    fn close(&self) {
        let mut g = self.state.lock().unwrap();
        g.1 = true;
        self.ready.notify_all();
    }
}

/// An entry in a connection's ordered pending queue: either a request to
/// execute or a response already produced on the reactor (overload
/// refusals, shutdown acks, teardown errors) that must still go out in
/// arrival order behind earlier requests.
enum PendingItem {
    Exec(Request),
    Reply(Vec<u8>),
}

/// Reactor-side connection record.
struct Conn<'db> {
    stream: TcpStream,
    asm: FrameAssembler,
    pending: VecDeque<PendingItem>,
    write_q: VecDeque<Vec<u8>>,
    /// Bytes of `write_q.front()` already written.
    write_off: usize,
    queued_bytes: usize,
    /// `None` exactly while a job for this connection is executing.
    state: Option<ConnState<'db>>,
    inflight: bool,
    /// Reader side open: new frames are still being accepted.
    reading: bool,
    /// Close once pending work is done and the write queue is flushed.
    close_after_flush: bool,
    last_byte: Instant,
    interest: Interest,
    /// Request bytes read off this socket, framing included.
    bytes_in: u64,
    /// Response bytes written to this socket, framing included.
    bytes_out: u64,
}

/// A bound-but-not-yet-serving query server.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind the listener. `addr` may use port 0 to let the OS pick; read
    /// the result back with [`Self::local_addr`].
    pub fn bind(addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Handle for asking the server to drain (from another thread or
    /// from a `Shutdown` request, which uses the same flag).
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shutdown))
    }

    /// Serve `db` until shut down. Blocks the calling thread (the
    /// reactor runs on it); workers run inside a [`std::thread::scope`]
    /// and are all joined before this returns.
    pub fn serve(&self, db: &DirectMeshDb) -> io::Result<ServerStats> {
        self.serve_host(Host::Single(db))
    }

    /// Serve a multi-region world catalog until shut down. Queries fan
    /// out across regions (or one region under `QueryScope::Region`);
    /// sessions pin the regions they touch, released on close *and* on
    /// connection teardown so eviction can proceed.
    pub fn serve_world(&self, world: &WorldDb) -> io::Result<ServerStats> {
        self.serve_host(Host::World(world))
    }

    fn serve_host(&self, host: Host<'_>) -> io::Result<ServerStats> {
        let shared = Shared {
            config: self.config.clone(),
            shutdown: Arc::clone(&self.shutdown),
            admission: Admission {
                inflight: AtomicUsize::new(0),
                max: self.config.max_inflight,
            },
            counters: Counters::default(),
        };
        let jobs = JobQueue::new();
        let completions: Mutex<Vec<Completion<'_>>> = Mutex::new(Vec::new());
        let poller = Poller::new()?;
        let workers = self.config.workers.max(1);

        let run = std::thread::scope(|s| {
            for _ in 0..workers {
                let jobs = &jobs;
                let completions = &completions;
                let shared = &shared;
                let poller = &poller;
                s.spawn(move || worker_loop(host, jobs, completions, shared, poller));
            }
            let mut reactor = Reactor {
                poller: &poller,
                listener: &self.listener,
                shared: &shared,
                host,
                jobs: &jobs,
                completions: &completions,
                conns: HashMap::new(),
                next_token: LISTEN_KEY + 1,
                accepting: true,
                drain_deadline: None,
            };
            let out = reactor.run();
            jobs.close();
            out
        });
        run?;

        Ok(ServerStats {
            connections: shared.counters.connections.load(Ordering::Relaxed),
            requests: shared.counters.requests.load(Ordering::Relaxed),
            errors: shared.counters.errors.load(Ordering::Relaxed),
            overloaded: shared.counters.overloaded.load(Ordering::Relaxed),
            slow_disconnects: shared.counters.slow_disconnects.load(Ordering::Relaxed),
            stalled_disconnects: shared.counters.stalled_disconnects.load(Ordering::Relaxed),
            bytes_in: shared.counters.bytes_in.load(Ordering::Relaxed),
            bytes_out: shared.counters.bytes_out.load(Ordering::Relaxed),
            delta_frames: shared.counters.delta_frames.load(Ordering::Relaxed),
            full_frames: shared.counters.full_frames.load(Ordering::Relaxed),
        })
    }
}

/// Does this request class consume an admission permit? Queries do;
/// session bookkeeping, stats and shutdown are cheap and always answered.
fn needs_permit(req: &Request) -> bool {
    matches!(
        req,
        Request::ViQuery { .. }
            | Request::VdQuery { .. }
            | Request::BatchQuery { .. }
            | Request::FrameQuery { .. }
    )
}

fn worker_loop<'db>(
    host: Host<'db>,
    jobs: &JobQueue<'db>,
    completions: &Mutex<Vec<Completion<'db>>>,
    shared: &Shared,
    poller: &Poller,
) {
    while let Some(job) = jobs.pop() {
        let Job {
            token,
            req,
            mut state,
            permit,
        } = job;
        let resps = handle_request(host, req, &mut state, shared);
        if permit {
            shared.admission.release();
        }
        if resps.iter().any(|r| matches!(r, Response::Error { .. })) {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        // Encode on the worker: the reactor only moves finished bytes.
        // Multi-frame answers (chunked meshes) ship each frame the
        // moment it is encoded — time-to-first-triangle must not wait
        // for the fine tail of the payload to be serialized. The state
        // rides the *final* completion, which re-opens dispatch.
        let mut state = Some(state);
        let last = resps.len().saturating_sub(1);
        if resps.is_empty() {
            completions.lock().unwrap().push(Completion {
                token,
                state: state.take(),
                frames: Vec::new(),
            });
            poller.notify().ok();
        }
        for (i, r) in resps.iter().enumerate() {
            let frame = encode_frame(r.kind(), &r.encode());
            completions.lock().unwrap().push(Completion {
                token,
                state: if i == last { state.take() } else { None },
                frames: vec![frame],
            });
            poller.notify().ok();
        }
    }
}

struct Reactor<'db, 'env> {
    poller: &'env Poller,
    listener: &'env TcpListener,
    shared: &'env Shared,
    host: Host<'db>,
    jobs: &'env JobQueue<'db>,
    completions: &'env Mutex<Vec<Completion<'db>>>,
    conns: HashMap<usize, Conn<'db>>,
    next_token: usize,
    accepting: bool,
    drain_deadline: Option<Instant>,
}

impl<'db> Reactor<'db, '_> {
    fn run(&mut self) -> io::Result<()> {
        self.poller
            .add(self.listener.as_raw_fd(), LISTEN_KEY, Interest::READ)?;
        let mut events = Vec::new();
        loop {
            self.drain_completions();

            if self.shared.shutdown.load(Ordering::SeqCst) {
                self.begin_drain();
                if self.conns.is_empty() {
                    break;
                }
                if self
                    .drain_deadline
                    .is_some_and(|deadline| Instant::now() >= deadline)
                {
                    let tokens: Vec<usize> = self.conns.keys().copied().collect();
                    for token in tokens {
                        self.close(token);
                    }
                    break;
                }
            }

            events.clear();
            self.poller.wait(&mut events, Some(TICK))?;
            for &ev in &events {
                if ev.key == LISTEN_KEY {
                    self.accept_ready();
                    continue;
                }
                if !self.conns.contains_key(&ev.key) {
                    continue; // closed earlier this round
                }
                if ev.readable {
                    self.handle_readable(ev.key);
                }
                if ev.writable {
                    self.handle_writable(ev.key);
                }
            }
            self.check_stalls();
        }
        self.poller.delete(self.listener.as_raw_fd()).ok();
        Ok(())
    }

    fn begin_drain(&mut self) {
        if self.drain_deadline.is_some() {
            return;
        }
        self.drain_deadline = Some(Instant::now() + self.shared.config.drain_grace);
        if self.accepting {
            self.accepting = false;
            self.poller.delete(self.listener.as_raw_fd()).ok();
        }
        // Existing connections finish queued work and flush, then close.
        let tokens: Vec<usize> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.close_after_flush = true;
            }
            self.after_io(token);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if !self.accepting {
                        continue; // drained while the event was in flight
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .add(stream.as_raw_fd(), token, Interest::READ)
                        .is_err()
                    {
                        continue;
                    }
                    self.shared
                        .counters
                        .connections
                        .fetch_add(1, Ordering::Relaxed);
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            asm: FrameAssembler::new(),
                            pending: VecDeque::new(),
                            write_q: VecDeque::new(),
                            write_off: 0,
                            queued_bytes: 0,
                            state: Some(ConnState {
                                sessions: HashMap::new(),
                                next_session: 1,
                                counters: StreamCounters::default(),
                            }),
                            inflight: false,
                            reading: true,
                            close_after_flush: false,
                            last_byte: Instant::now(),
                            interest: Interest::READ,
                            bytes_in: 0,
                            bytes_out: 0,
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Read everything the socket has, reassemble frames, decode and
    /// queue requests. Never blocks: the socket is non-blocking and the
    /// loop exits on `WouldBlock`.
    fn handle_readable(&mut self, token: usize) {
        let mut buf = [0u8; 64 * 1024];
        let shared = self.shared;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut saw_eof = false;
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    saw_eof = true;
                    break;
                }
                Ok(n) => {
                    conn.asm.push(&buf[..n]);
                    conn.bytes_in += n as u64;
                    shared
                        .counters
                        .bytes_in
                        .fetch_add(n as u64, Ordering::Relaxed);
                    conn.last_byte = Instant::now();
                    // Cap how much we buffer ahead of the parser.
                    if conn.asm.buffered() > (64 << 20) + (64 * 1024) {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token);
                    return;
                }
            }
        }
        // Parse what we buffered *before* honoring EOF, so a peer that
        // writes and immediately closes still gets its frames handled.
        self.parse_frames(token);
        if saw_eof {
            if let Some(conn) = self.conns.get_mut(&token) {
                // Clean EOF: finish queued work, flush, then close.
                conn.reading = false;
                conn.close_after_flush = true;
            }
        }
        self.try_dispatch(token);
        self.after_io(token);
    }

    /// Decode as many complete frames as the assembler holds into
    /// pending items (in arrival order).
    fn parse_frames(&mut self, token: usize) {
        let shared = self.shared;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        while conn.reading {
            match conn.asm.next_frame() {
                Ok(None) => break,
                Ok(Some(frame)) => {
                    shared.counters.requests.fetch_add(1, Ordering::Relaxed);
                    match Request::decode(&frame) {
                        Ok(Request::Shutdown) => {
                            // Fast-path on the reactor: flip the flag now,
                            // acknowledge in order behind earlier requests.
                            shared.shutdown.store(true, Ordering::SeqCst);
                            let ack = Response::ShutdownAck;
                            conn.pending.push_back(PendingItem::Reply(encode_frame(
                                ack.kind(),
                                &ack.encode(),
                            )));
                            conn.reading = false;
                            conn.close_after_flush = true;
                        }
                        Ok(req) => {
                            if shared.shutdown.load(Ordering::SeqCst) {
                                let resp = Response::Error {
                                    code: ErrorCode::ShuttingDown,
                                    message: "server is draining".to_string(),
                                };
                                conn.pending.push_back(PendingItem::Reply(encode_frame(
                                    resp.kind(),
                                    &resp.encode(),
                                )));
                                conn.reading = false;
                                conn.close_after_flush = true;
                            } else {
                                conn.pending.push_back(PendingItem::Exec(req));
                            }
                        }
                        Err(e) => {
                            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                            let resp = Response::Error {
                                code: ErrorCode::BadRequest,
                                message: format!("bad request: {e}"),
                            };
                            conn.pending.push_back(PendingItem::Reply(encode_frame(
                                resp.kind(),
                                &resp.encode(),
                            )));
                            conn.reading = false;
                            conn.close_after_flush = true;
                        }
                    }
                }
                Err(e) => {
                    // Framing is desynchronized (bad magic, CRC): answer
                    // in order if possible, then drop the connection.
                    shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                    let resp = Response::Error {
                        code: ErrorCode::BadRequest,
                        message: format!("unreadable frame: {e}"),
                    };
                    conn.pending.push_back(PendingItem::Reply(encode_frame(
                        resp.kind(),
                        &resp.encode(),
                    )));
                    conn.reading = false;
                    conn.close_after_flush = true;
                }
            }
        }
    }

    /// Dispatch pending items while the connection has no request in
    /// flight: pre-encoded replies go straight to the write queue;
    /// requests go to the worker pool (at most one at a time, preserving
    /// response order and per-request counter attribution).
    fn try_dispatch(&mut self, token: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.inflight {
                return;
            }
            match conn.pending.front() {
                None => return,
                Some(PendingItem::Reply(_)) => {
                    let Some(PendingItem::Reply(bytes)) = conn.pending.pop_front() else {
                        unreachable!("front() said Reply");
                    };
                    if !self.enqueue_bytes(token, bytes) {
                        return; // connection was shed or died
                    }
                }
                Some(PendingItem::Exec(req)) => {
                    let permit = needs_permit(req);
                    if permit && !self.shared.admission.try_acquire() {
                        self.shared
                            .counters
                            .overloaded
                            .fetch_add(1, Ordering::Relaxed);
                        conn.pending.pop_front();
                        let resp = Response::Overloaded {
                            retry_after_ms: self.shared.config.retry_after_ms,
                        };
                        let bytes = encode_frame(resp.kind(), &resp.encode());
                        if !self.enqueue_bytes(token, bytes) {
                            return;
                        }
                        continue;
                    }
                    let Some(PendingItem::Exec(req)) = conn.pending.pop_front() else {
                        unreachable!("front() said Exec");
                    };
                    let mut state = conn
                        .state
                        .take()
                        .expect("connection state present while idle");
                    // Snapshot byte totals for `Stats` answers; exact
                    // because this connection executes serially.
                    state.counters.bytes_in = conn.bytes_in;
                    state.counters.bytes_out = conn.bytes_out;
                    conn.inflight = true;
                    self.jobs.push(Job {
                        token,
                        req,
                        state,
                        permit,
                    });
                }
            }
        }
    }

    /// Hand finished jobs' responses back to their connections. A
    /// multi-frame answer (chunked mesh) enters the write queue as
    /// separate entries, each subject to the byte budget.
    fn drain_completions(&mut self) {
        let done: Vec<Completion<'db>> = std::mem::take(&mut *self.completions.lock().unwrap());
        for completion in done {
            let Some(conn) = self.conns.get_mut(&completion.token) else {
                // Connection closed while the job ran: its state (and
                // any world-session region pins) comes home here.
                if let Some(mut state) = completion.state {
                    release_conn_sessions(self.host, &mut state);
                }
                continue;
            };
            if let Some(state) = completion.state {
                conn.state = Some(state);
                conn.inflight = false;
            }
            let token = completion.token;
            let mut alive = true;
            for bytes in completion.frames {
                if !self.enqueue_bytes(token, bytes) {
                    alive = false;
                    break; // connection was shed or died
                }
            }
            if !alive {
                continue;
            }
            self.try_dispatch(token);
            self.after_io(token);
        }
    }

    /// Queue an encoded response frame and opportunistically flush.
    /// Returns false when the connection was closed (slow-reader shed or
    /// I/O failure) — the caller must not touch it again.
    fn enqueue_bytes(&mut self, token: usize, bytes: Vec<u8>) -> bool {
        let budget = self.shared.config.write_budget;
        let shared = self.shared;
        let Some(conn) = self.conns.get_mut(&token) else {
            return false;
        };
        conn.queued_bytes += bytes.len();
        conn.write_q.push_back(bytes);
        match flush_writes(conn) {
            Ok(n) => shared.counters.bytes_out.fetch_add(n, Ordering::Relaxed),
            Err(_) => {
                self.close(token);
                return false;
            }
        };
        let conn = self.conns.get_mut(&token).expect("conn still present");
        if conn.queued_bytes > budget {
            // The peer is not reading fast enough to keep its response
            // queue bounded: shed it rather than buffer without limit.
            self.shared
                .counters
                .slow_disconnects
                .fetch_add(1, Ordering::Relaxed);
            self.close(token);
            return false;
        }
        true
    }

    fn handle_writable(&mut self, token: usize) {
        let shared = self.shared;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match flush_writes(conn) {
            Ok(n) => shared.counters.bytes_out.fetch_add(n, Ordering::Relaxed),
            Err(_) => {
                self.close(token);
                return;
            }
        };
        self.after_io(token);
    }

    /// Re-derive poller interest from the connection's current needs and
    /// close it if its teardown conditions are met.
    fn after_io(&mut self, token: usize) {
        let max_pipeline = self.shared.config.max_pipeline.max(1);
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.close_after_flush
            && !conn.inflight
            && conn.pending.is_empty()
            && conn.write_q.is_empty()
        {
            self.close(token);
            return;
        }
        let want = Interest {
            readable: conn.reading && conn.pending.len() < max_pipeline,
            writable: !conn.write_q.is_empty(),
        };
        if want != conn.interest {
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), token, want)
                .is_err()
            {
                self.close(token);
                return;
            }
            conn.interest = want;
        }
    }

    /// Shed peers that owe us the rest of a frame but have sent nothing
    /// for longer than the stall deadline (e.g. a hostile trickler that
    /// simply stopped). Idle peers *between* frames are left alone.
    fn check_stalls(&mut self) {
        let deadline = self.shared.config.frame_stall_timeout;
        let stalled: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, c)| c.asm.mid_frame() && c.last_byte.elapsed() >= deadline)
            .map(|(&t, _)| t)
            .collect();
        for token in stalled {
            self.shared
                .counters
                .stalled_disconnects
                .fetch_add(1, Ordering::Relaxed);
            self.close(token);
        }
    }

    fn close(&mut self, token: usize) {
        if let Some(mut conn) = self.conns.remove(&token) {
            self.poller.delete(conn.stream.as_raw_fd()).ok();
            // Disconnect teardown: release region pins held by this
            // connection's sessions so LRU eviction can proceed. If a
            // job is in flight the state rides its completion instead
            // (see `drain_completions`).
            if let Some(state) = conn.state.as_mut() {
                release_conn_sessions(self.host, state);
            }
        }
    }
}

/// Write queued response bytes until the socket would block or the queue
/// empties; returns how many bytes went out. `Err` means the connection
/// is dead.
fn flush_writes(conn: &mut Conn<'_>) -> io::Result<u64> {
    let mut written = 0u64;
    while let Some(front) = conn.write_q.front() {
        match conn.stream.write(&front[conn.write_off..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "peer stopped accepting bytes",
                ))
            }
            Ok(n) => {
                conn.write_off += n;
                conn.queued_bytes -= n;
                written += n as u64;
                conn.bytes_out += n as u64;
                if conn.write_off == front.len() {
                    conn.write_q.pop_front();
                    conn.write_off = 0;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(written)
}

fn storage_error(e: impl std::fmt::Display) -> Box<Response> {
    Box::new(Response::Error {
        code: ErrorCode::Storage,
        message: format!("storage: {e}"),
    })
}

fn bad_request(message: String) -> Box<Response> {
    Box::new(Response::Error {
        code: ErrorCode::BadRequest,
        message,
    })
}

/// Resolve the request's region scope against what this server hosts:
/// `None` = whole host, `Some(idx)` = one region index of the world.
/// Region scope on a single-terrain server — and an unknown region id
/// on a world server — is a typed `BadRequest`.
fn resolve_scope(host: Host<'_>, opts: QueryOpts) -> Result<Option<usize>, Box<Response>> {
    match (host, opts.scope) {
        (_, QueryScope::World) => Ok(None),
        (Host::Single(_), QueryScope::Region(id)) => Err(bad_request(format!(
            "region scope {id} on a single-terrain server"
        ))),
        (Host::World(w), QueryScope::Region(id)) => w
            .resolve_region_id(id)
            .map(Some)
            .ok_or_else(|| bad_request(format!("unknown region id {id}"))),
    }
}

/// Flush + reset statistics when the request asks for paper-protocol
/// cold measurement.
fn maybe_cold(host: Host<'_>, opts: QueryOpts) -> Result<(), Box<Response>> {
    if opts.cold {
        match host {
            Host::Single(db) => db.try_cold_start().map_err(storage_error)?,
            Host::World(w) => w.try_cold_start().map_err(storage_error)?,
        }
    }
    Ok(())
}

/// Run one VI query on this thread with exact per-request accounting.
/// Uses the flat fast path: canonical vertices and faces come straight
/// from the uniform cut, bit-identical to `canonical_mesh` over the
/// assembled front (same construction, see `try_vi_query_flat_counted`).
fn exec_vi(
    host: Host<'_>,
    roi: &Rect,
    e: f64,
    scope: Option<usize>,
    degraded: bool,
    coarseness: Option<&mut Vec<f64>>,
) -> Result<MeshResult, Box<Response>> {
    let reads_before = dm_storage::thread_reads();
    let mut counters = FetchCounters::default();
    let (res, report) = match host {
        Host::Single(db) => db.try_vi_query_flat_counted(roi, e, &mut counters),
        Host::World(w) => w.try_vi_query_flat_scoped(roi, e, scope, &mut counters),
    }
    .map_err(storage_error)?;
    if !degraded && !report.is_clean() {
        return Err(Box::new(Response::Error {
            code: ErrorCode::DataLoss,
            message: format!("vi query lost data: {report}"),
        }));
    }
    let (vertices, faces) = canonical_flat(&res.nodes, &res.faces);
    if let Some(c) = coarseness {
        // `canonical_flat` preserves the node order, so coarseness
        // aligns with the canonical vertex list by index.
        c.clear();
        c.extend(res.nodes.iter().map(|n| n.e_lo));
    }
    Ok(MeshResult {
        vertices,
        faces,
        fetched_records: res.fetched_records as u64,
        disk_accesses: dm_storage::thread_reads() - reads_before,
        cubes: 1,
        counters,
        report,
    })
}

fn exec_vd(
    host: Host<'_>,
    query: &VdQuery,
    policy: BoundaryPolicy,
    max_cubes: u32,
    scope: Option<usize>,
    degraded: bool,
    coarseness: Option<&mut Vec<f64>>,
) -> Result<MeshResult, Box<Response>> {
    let reads_before = dm_storage::thread_reads();
    let mut counters = FetchCounters::default();
    let max_cubes = max_cubes.max(1) as usize;
    let (res, report) = match host {
        Host::Single(db) => db.try_vd_multi_base_counted(query, policy, max_cubes, &mut counters),
        Host::World(w) => w.try_vd_query_scoped(query, policy, max_cubes, scope, &mut counters),
    }
    .map_err(storage_error)?;
    if !degraded && !report.is_clean() {
        return Err(Box::new(Response::Error {
            code: ErrorCode::DataLoss,
            message: format!("vd query lost data: {report}"),
        }));
    }
    let (vertices, faces) = canonical_mesh(&res.front);
    if let Some(c) = coarseness {
        c.clear();
        c.extend(
            vertices
                .iter()
                .map(|v| res.front.node(v.id).map_or(0.0, |n| n.e_lo)),
        );
    }
    Ok(MeshResult {
        vertices,
        faces,
        fetched_records: res.fetched_records as u64,
        disk_accesses: dm_storage::thread_reads() - reads_before,
        cubes: res.cubes.len() as u32,
        counters,
        report,
    })
}

/// Split a finished mesh answer into coarse-to-fine chunk responses.
fn chunk_mesh(m: MeshResult, coarseness: &[f64]) -> Vec<Response> {
    let tail = m.tail();
    split_coarse_to_fine(
        &m.vertices,
        coarseness,
        &m.faces,
        tail,
        FIRST_CHUNK_VERTICES,
    )
    .into_iter()
    .map(Response::MeshChunk)
    .collect()
}

/// Fan a batch of VI queries over up to `threads` workers (chunked, one
/// spawned task per worker — the vendored rayon shim's contract). Each
/// item runs entirely on one thread, so its thread-attributed counters
/// stay exact even under parallel execution.
fn exec_batch(
    host: Host<'_>,
    queries: &[(Rect, f64)],
    threads: u32,
    scope: Option<usize>,
    degraded: bool,
) -> Result<(u64, Vec<MeshResult>), Box<Response>> {
    let t = dm_core::parallel::resolve_threads(threads as usize)
        .min(queries.len())
        .max(1);
    let mut slots: Vec<Option<Result<MeshResult, Box<Response>>>> = Vec::new();
    slots.resize_with(queries.len(), || None);
    if t <= 1 {
        for (slot, (roi, e)) in slots.iter_mut().zip(queries) {
            *slot = Some(exec_vi(host, roi, *e, scope, degraded, None));
        }
    } else {
        let chunk = queries.len().div_ceil(t);
        rayon::scope(|s| {
            for (qs, outs) in queries.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                s.spawn(move |_| {
                    for (slot, (roi, e)) in outs.iter_mut().zip(qs) {
                        *slot = Some(exec_vi(host, roi, *e, scope, degraded, None));
                    }
                });
            }
        });
    }
    let mut items = Vec::with_capacity(slots.len());
    let mut total = 0u64;
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.expect("every batch slot is filled") {
            Ok(m) => {
                total += m.disk_accesses;
                items.push(m);
            }
            Err(resp) => {
                return Err(match *resp {
                    Response::Error { code, message } => Box::new(Response::Error {
                        code,
                        message: format!("batch item {i}: {message}"),
                    }),
                    other => Box::new(other),
                });
            }
        }
    }
    Ok((total, items))
}

/// Execute one request into its response frame sequence — a single
/// response for everything except chunked queries, which stream several
/// `MeshChunk` frames.
fn handle_request<'db>(
    host: Host<'db>,
    req: Request,
    conn: &mut ConnState<'db>,
    shared: &Shared,
) -> Vec<Response> {
    match req {
        Request::ViQuery { opts, roi, e } => {
            let scope = match resolve_scope(host, opts) {
                Ok(s) => s,
                Err(resp) => return vec![*resp],
            };
            if let Err(resp) = maybe_cold(host, opts) {
                return vec![*resp];
            }
            let mut coarseness = Vec::new();
            let co = if opts.chunked {
                Some(&mut coarseness)
            } else {
                None
            };
            match exec_vi(host, &roi, e, scope, opts.degraded, co) {
                Ok(m) if opts.chunked => chunk_mesh(m, &coarseness),
                Ok(m) => vec![Response::Mesh(m)],
                Err(resp) => vec![*resp],
            }
        }
        Request::VdQuery {
            opts,
            query,
            policy,
            max_cubes,
        } => {
            let scope = match resolve_scope(host, opts) {
                Ok(s) => s,
                Err(resp) => return vec![*resp],
            };
            if let Err(resp) = maybe_cold(host, opts) {
                return vec![*resp];
            }
            let mut coarseness = Vec::new();
            let co = if opts.chunked {
                Some(&mut coarseness)
            } else {
                None
            };
            match exec_vd(host, &query, policy, max_cubes, scope, opts.degraded, co) {
                Ok(m) if opts.chunked => chunk_mesh(m, &coarseness),
                Ok(m) => vec![Response::Mesh(m)],
                Err(resp) => vec![*resp],
            }
        }
        Request::BatchQuery {
            opts,
            queries,
            threads,
        } => {
            let scope = match resolve_scope(host, opts) {
                Ok(s) => s,
                Err(resp) => return vec![*resp],
            };
            if queries.is_empty() {
                return vec![Response::Batch {
                    total_disk_accesses: 0,
                    items: Vec::new(),
                }];
            }
            if let Err(resp) = maybe_cold(host, opts) {
                return vec![*resp];
            }
            match exec_batch(host, &queries, threads, scope, opts.degraded) {
                Ok((total_disk_accesses, items)) => vec![Response::Batch {
                    total_disk_accesses,
                    items,
                }],
                Err(resp) => vec![*resp],
            }
        }
        Request::OpenSession {
            policy,
            max_cubes,
            full_requery,
        } => {
            if conn.sessions.len() >= shared.config.max_sessions_per_conn {
                return vec![Response::Error {
                    code: ErrorCode::TooManySessions,
                    message: format!("connection already holds {} sessions", conn.sessions.len()),
                }];
            }
            let id = conn.next_session;
            conn.next_session += 1;
            let nav = match host {
                Host::Single(db) => SessionNav::Single(Box::new(
                    NavigationSession::new(db, policy)
                        .with_max_cubes(max_cubes.max(1) as usize)
                        .with_full_requery(full_requery),
                )),
                // World walkthroughs re-plan against the catalog every
                // frame (full requery is implied); the session's job is
                // pinning the regions it touches.
                Host::World(_) => {
                    SessionNav::World(WorldSession::new(policy, max_cubes.max(1) as usize))
                }
            };
            conn.sessions.insert(
                id,
                SessionSlot {
                    nav,
                    stream: StreamState::default(),
                },
            );
            vec![Response::SessionOpened { session: id }]
        }
        Request::FrameQuery {
            session,
            query,
            degraded,
            stream,
        } => {
            let Some(slot) = conn.sessions.get_mut(&session) else {
                return vec![Response::Error {
                    code: ErrorCode::UnknownSession,
                    message: format!("session {session} is not open on this connection"),
                }];
            };
            let reads_before = dm_storage::thread_reads();
            let SessionSlot { nav, stream: st } = slot;
            // Advance the session: each nav flavor leaves the frame's
            // canonical mesh in the scratch buffers and hands back the
            // accounting tail. Errors break the delta chain — the
            // client never saw this frame, so the next answer resets.
            let advanced = match nav {
                SessionNav::Single(nav) => match nav.try_move_to(&query) {
                    Err(e) => Err(*storage_error(e)),
                    Ok((_, report)) if !degraded && !report.is_clean() => Err(Response::Error {
                        code: ErrorCode::DataLoss,
                        message: format!("frame lost data: {report}"),
                    }),
                    Ok((stats, report)) => {
                        let tail = ResultTail {
                            fetched_records: stats.fetched_records as u64,
                            disk_accesses: dm_storage::thread_reads() - reads_before,
                            cubes: 0,
                            counters: FetchCounters {
                                pages_scanned: stats.pages_scanned,
                                records_examined: stats.examined_records,
                                records_decoded: stats.decoded_records,
                            },
                            report,
                        };
                        canonical_mesh_into(
                            nav.front(),
                            &mut st.scratch_vertices,
                            &mut st.scratch_faces,
                        );
                        Ok(tail)
                    }
                },
                SessionNav::World(ws) => {
                    let Host::World(world) = host else {
                        unreachable!("world session on a single-terrain host");
                    };
                    let mut counters = FetchCounters::default();
                    match ws.frame(world, &query, &mut counters) {
                        Err(e) => Err(*storage_error(e)),
                        Ok((_, report)) if !degraded && !report.is_clean() => {
                            Err(Response::Error {
                                code: ErrorCode::DataLoss,
                                message: format!("frame lost data: {report}"),
                            })
                        }
                        Ok((res, report)) => {
                            let tail = ResultTail {
                                fetched_records: res.fetched_records as u64,
                                disk_accesses: dm_storage::thread_reads() - reads_before,
                                cubes: res.cubes.len() as u32,
                                counters,
                                report,
                            };
                            canonical_mesh_into(
                                &res.front,
                                &mut st.scratch_vertices,
                                &mut st.scratch_faces,
                            );
                            Ok(tail)
                        }
                    }
                }
            };
            match advanced {
                Err(resp) => {
                    st.has_prev = false;
                    vec![resp]
                }
                Ok(tail) => {
                    if stream == StreamMode::Full {
                        // Monolithic answer; it carries no sequence
                        // number, so the delta chain breaks here.
                        st.has_prev = false;
                        conn.counters.full_frames += 1;
                        shared.counters.full_frames.fetch_add(1, Ordering::Relaxed);
                        return vec![Response::Mesh(MeshResult::from_parts(
                            st.scratch_vertices.clone(),
                            st.scratch_faces.clone(),
                            tail,
                        ))];
                    }
                    let next_seq = st.seq.wrapping_add(1);
                    let delta = if st.has_prev {
                        let (removed_vertices, added_vertices, removed_faces, added_faces) =
                            diff_frames(
                                &st.prev_vertices,
                                &st.prev_faces,
                                &st.scratch_vertices,
                                &st.scratch_faces,
                            );
                        let patch = FrameDelta {
                            seq: next_seq,
                            base_seq: st.seq,
                            is_delta: true,
                            removed_vertices,
                            added_vertices,
                            removed_faces,
                            added_faces,
                            tail: tail.clone(),
                        };
                        if stream == StreamMode::Auto {
                            // Size cutover: both forms answer the same
                            // frame; ship whichever encodes smaller.
                            let full = FrameDelta::full_reset(
                                next_seq,
                                st.scratch_vertices.clone(),
                                st.scratch_faces.clone(),
                                tail,
                            );
                            if st.encoded_len(&patch) <= st.encoded_len(&full) {
                                patch
                            } else {
                                full
                            }
                        } else {
                            patch
                        }
                    } else {
                        FrameDelta::full_reset(
                            next_seq,
                            st.scratch_vertices.clone(),
                            st.scratch_faces.clone(),
                            tail,
                        )
                    };
                    st.seq = next_seq;
                    std::mem::swap(&mut st.prev_vertices, &mut st.scratch_vertices);
                    std::mem::swap(&mut st.prev_faces, &mut st.scratch_faces);
                    st.has_prev = true;
                    if delta.is_delta {
                        conn.counters.delta_frames += 1;
                        shared.counters.delta_frames.fetch_add(1, Ordering::Relaxed);
                    } else {
                        conn.counters.full_frames += 1;
                        shared.counters.full_frames.fetch_add(1, Ordering::Relaxed);
                    }
                    vec![Response::FrameDelta(delta)]
                }
            }
        }
        Request::CloseSession { session } => {
            if let Some(mut slot) = conn.sessions.remove(&session) {
                slot.release(host);
                vec![Response::SessionClosed]
            } else {
                vec![Response::Error {
                    code: ErrorCode::UnknownSession,
                    message: format!("session {session} is not open on this connection"),
                }]
            }
        }
        Request::Stats { resolve_keep } => {
            let (stats, resolved_e) = match host {
                Host::Single(db) => (
                    db.stats_summary(),
                    resolve_keep
                        .iter()
                        .map(|&k| db.e_for_points_fraction(k))
                        .collect(),
                ),
                Host::World(w) => {
                    let stats = match w.stats_summary() {
                        Ok(s) => s,
                        Err(e) => return vec![*storage_error(e)],
                    };
                    let mut resolved = Vec::with_capacity(resolve_keep.len());
                    for &k in &resolve_keep {
                        match w.e_for_points_fraction(k) {
                            Ok(e) => resolved.push(e),
                            Err(e) => return vec![*storage_error(e)],
                        }
                    }
                    (stats, resolved)
                }
            };
            vec![Response::Stats {
                stats,
                resolved_e,
                conn: conn.counters,
                totals: StreamCounters {
                    bytes_in: shared.counters.bytes_in.load(Ordering::Relaxed),
                    bytes_out: shared.counters.bytes_out.load(Ordering::Relaxed),
                    delta_frames: shared.counters.delta_frames.load(Ordering::Relaxed),
                    full_frames: shared.counters.full_frames.load(Ordering::Relaxed),
                },
            }]
        }
        Request::WorldStats => match host {
            Host::Single(_) => vec![Response::Error {
                code: ErrorCode::BadRequest,
                message: "world stats on a single-terrain server".to_string(),
            }],
            Host::World(w) => vec![Response::WorldStats {
                regions: w
                    .region_stats()
                    .into_iter()
                    .map(|s| RegionWireStats {
                        id: s.id,
                        opens: s.opens,
                        evictions: s.evictions,
                        hits: s.hits,
                        queries: s.queries,
                        resident_pages: s.resident_pages,
                        open: s.open,
                    })
                    .collect(),
            }],
        },
        // Handled by the reactor before dispatch.
        Request::Shutdown => vec![Response::ShutdownAck],
    }
}

/// Test helper: the first 6 bytes of a valid frame (magic + version) —
/// a prefix that obliges the server to wait for the rest.
#[cfg(test)]
fn super_valid_prefix() -> Vec<u8> {
    let mut v = Vec::new();
    v.extend_from_slice(&dm_net::frame::MAGIC.to_le_bytes());
    v.extend_from_slice(&dm_net::frame::VERSION.to_le_bytes());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_core::DmBuildOptions;
    use dm_mtm::builder::{build_pm, PmBuildConfig};
    use dm_net::client::{Client, ClientConfig};
    use dm_net::frame::write_frame;
    use dm_net::wire::WireError;
    use dm_storage::{BufferPool, MemStore};
    use dm_terrain::{generate, TriMesh};

    fn tiny_db() -> DirectMeshDb {
        let hf = generate::fractal_terrain(17, 17, 7);
        let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());
        let pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), 4096));
        DirectMeshDb::build(pool, &pm, &DmBuildOptions::default())
    }

    fn with_server<R>(
        config: ServerConfig,
        f: impl FnOnce(&str, &DirectMeshDb) -> R + Send,
    ) -> (R, ServerStats)
    where
        R: Send,
    {
        let db = tiny_db();
        let server = Server::bind("127.0.0.1:0", config).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = server.shutdown_handle();
        std::thread::scope(|s| {
            let srv = s.spawn(|| server.serve(&db).unwrap());
            let out = f(&addr, &db);
            handle.shutdown();
            (out, srv.join().unwrap())
        })
    }

    #[test]
    fn stats_roundtrip_and_clean_shutdown() {
        let (got, stats) = with_server(ServerConfig::default(), |addr, db| {
            let mut c = Client::connect(addr).unwrap();
            let (remote, resolved) = c.stats(vec![0.25]).unwrap();
            assert_eq!(remote, db.stats_summary());
            assert_eq!(resolved, vec![db.e_for_points_fraction(0.25)]);
            c.shutdown_server().unwrap();
            remote.n_records
        });
        assert!(got > 0);
        assert_eq!(stats.connections, 1);
        assert!(stats.requests >= 2);
        assert_eq!(stats.errors, 0);
    }

    #[test]
    fn zero_inflight_budget_answers_overloaded() {
        let config = ServerConfig {
            max_inflight: 0,
            ..ServerConfig::default()
        };
        let ((), stats) = with_server(config, |addr, db| {
            let mut c = Client::connect_with(
                addr,
                ClientConfig {
                    overload_retries: 1,
                    ..ClientConfig::default()
                },
            )
            .unwrap();
            let err = c
                .vi_query(QueryOpts::default(), db.bounds, 0.5)
                .unwrap_err();
            assert!(matches!(err, WireError::Overloaded { .. }), "{err}");
        });
        assert!(stats.overloaded >= 1);
    }

    #[test]
    fn unknown_session_is_a_typed_error() {
        let ((), _stats) = with_server(ServerConfig::default(), |addr, db| {
            let mut c = Client::connect(addr).unwrap();
            let q = VdQuery {
                roi: db.bounds,
                target: dm_mtm::PlaneTarget {
                    origin: db.bounds.min,
                    dir: dm_geom::Vec2::new(1.0, 0.0),
                    e_min: 0.05,
                    slope: 0.01,
                    e_max: 0.5,
                },
            };
            let err = c.frame_query(99, q, false).unwrap_err();
            match err {
                WireError::Remote { code, .. } => {
                    assert_eq!(code, ErrorCode::UnknownSession.code());
                }
                other => panic!("expected remote error, got {other}"),
            }
        });
    }

    #[test]
    fn slow_reader_is_disconnected_not_hung() {
        let config = ServerConfig {
            // Tight byte budget so the shed triggers quickly.
            write_budget: 64 * 1024,
            ..ServerConfig::default()
        };
        let ((), stats) = with_server(config, |addr, db| {
            // A peer that pipelines many full-detail queries and never
            // reads a single response byte: responses pile up in its
            // write queue until the byte budget sheds the connection —
            // without ever wedging the reactor or a worker.
            let mut evil = TcpStream::connect(addr).unwrap();
            let e = db.e_for_points_fraction(1.0);
            let req = Request::ViQuery {
                opts: QueryOpts::default(),
                roi: db.bounds,
                e,
            };
            let payload = req.encode();
            // Pipeline until the server sheds us: once the budget trips
            // it drops the connection, our unread data turns the close
            // into a reset, and our writes start failing.
            let mut dropped = false;
            for _ in 0..200_000 {
                if write_frame(&mut evil, req.kind(), &payload).is_err() {
                    dropped = true;
                    break;
                }
            }
            assert!(dropped, "server never disconnected the non-reading peer");
            // The server must remain responsive to well-behaved clients
            // while (and after) shedding the slow reader.
            let mut c = Client::connect(addr).unwrap();
            let (remote, _) = c.stats(Vec::new()).unwrap();
            assert_eq!(remote, db.stats_summary());
            drop(evil);
        });
        assert!(
            stats.slow_disconnects >= 1,
            "expected a typed slow-reader disconnect, got {stats:?}"
        );
    }

    #[test]
    fn mid_frame_staller_is_shed_on_deadline() {
        let config = ServerConfig {
            frame_stall_timeout: Duration::from_millis(150),
            ..ServerConfig::default()
        };
        let ((), stats) = with_server(config, |addr, _db| {
            // Send half a valid frame header, then go silent: the peer
            // owes the server bytes it will never send.
            let mut staller = TcpStream::connect(addr).unwrap();
            staller.write_all(&super::super_valid_prefix()).unwrap();
            // Meanwhile a healthy client keeps getting answers.
            let mut c = Client::connect(addr).unwrap();
            let t0 = Instant::now();
            while t0.elapsed() < Duration::from_secs(5) {
                c.stats(Vec::new()).unwrap();
                std::thread::sleep(Duration::from_millis(50));
                // Probe whether the staller was dropped yet.
                let mut probe = [0u8; 1];
                staller.set_nonblocking(true).unwrap();
                match staller.read(&mut probe) {
                    Ok(_) => break, // EOF: shed
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(_) => break, // reset: shed
                }
            }
        });
        assert!(
            stats.stalled_disconnects >= 1,
            "expected a stall shed, got {stats:?}"
        );
    }

    #[test]
    fn garbage_bytes_do_not_crash_the_server() {
        let ((), stats) = with_server(ServerConfig::default(), |addr, _db| {
            let mut raw = TcpStream::connect(addr).unwrap();
            raw.write_all(b"this is not a DMNT frame at all").unwrap();
            drop(raw);
            // The server must still answer a well-formed client.
            let mut c = Client::connect(addr).unwrap();
            c.stats(Vec::new()).unwrap();
        });
        assert!(stats.errors >= 1);
        assert_eq!(stats.connections, 2);
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let ((), stats) = with_server(ServerConfig::default(), |addr, db| {
            let e = db.e_for_points_fraction(0.5);
            let reqs: Vec<Request> = (0..8)
                .map(|_| Request::ViQuery {
                    opts: QueryOpts::default(),
                    roi: db.bounds,
                    e,
                })
                .collect();
            let mut c = Client::connect(addr).unwrap();
            let pipelined = c.exchange_pipelined(&reqs, 8).unwrap();
            assert_eq!(pipelined.len(), reqs.len());
            let serial = c.vi_query(QueryOpts::default(), db.bounds, e).unwrap();
            for (i, resp) in pipelined.iter().enumerate() {
                match resp {
                    Response::Mesh(m) => {
                        assert_eq!(m.vertices, serial.vertices, "response {i}");
                        assert_eq!(m.faces, serial.faces, "response {i}");
                    }
                    other => panic!(
                        "response {i}: expected mesh, got kind {:#04x}",
                        other.kind()
                    ),
                }
            }
        });
        assert!(stats.requests >= 9);
        assert_eq!(stats.errors, 0);
    }
}

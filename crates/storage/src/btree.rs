//! A disk-resident B+-tree mapping `u64` keys to `u64` values.
//!
//! Used as the primary-key index (`node id → record id`) on every terrain
//! table, mirroring the paper's "B+-tree indexes are created wherever
//! necessary for all the tables used".
//!
//! Node layout (8 KiB pages):
//!
//! ```text
//! leaf:     [1u8][pad][n: u16][next_leaf: u32]  then n × (key u64, val u64)
//! internal: [0u8][pad][n: u16][pad: u32][child0: u32]  then n × (key u64, child u32)
//! ```
//!
//! An internal node with `n` keys has `n + 1` children; `key[i]` is the
//! smallest key reachable in `child[i + 1]`.

use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::page::{codec, PageId, NO_PAGE, PAGE_DATA, PAGE_SIZE};

const HDR: usize = 8;
const LEAF_ENTRY: usize = 16;
const INT_ENTRY: usize = 12;
const INT_CHILD0: usize = HDR + 4; // after header + pad comes child0
/// Max keys per leaf (the page's checksum trailer is out of bounds).
pub const LEAF_CAP: usize = (PAGE_DATA - HDR) / LEAF_ENTRY; // 511
/// Max keys per internal node.
pub const INT_CAP: usize = (PAGE_DATA - INT_CHILD0 - 4) / INT_ENTRY; // 681

/// The B+-tree. Root page id changes as the tree grows.
pub struct BTree {
    pool: Arc<BufferPool>,
    root: PageId,
    len: u64,
    height: u32,
}

enum InsertResult {
    Done,
    /// Child split: (separator key, new right sibling page).
    Split(u64, PageId),
}

impl BTree {
    pub fn create(pool: Arc<BufferPool>) -> Self {
        let root = pool.allocate();
        pool.write(root, |b| {
            b[0] = 1; // leaf
            codec::put_u16(b, 2, 0);
            codec::put_u32(b, 4, NO_PAGE);
        });
        BTree {
            pool,
            root,
            len: 0,
            height: 1,
        }
    }

    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn height(&self) -> u32 {
        self.height
    }

    pub fn root_page(&self) -> PageId {
        self.root
    }

    /// Reattach to an existing tree (catalog reload). The caller is
    /// responsible for passing the values a prior instance reported.
    pub fn from_parts(pool: Arc<BufferPool>, root: PageId, len: u64, height: u32) -> Self {
        BTree {
            pool,
            root,
            len,
            height,
        }
    }

    /// Insert or overwrite.
    pub fn insert(&mut self, key: u64, value: u64) {
        match self.insert_rec(self.root, key, value) {
            InsertResult::Done => {}
            InsertResult::Split(sep, right) => {
                let new_root = self.pool.allocate();
                let old_root = self.root;
                self.pool.write(new_root, |b| {
                    b[0] = 0; // internal
                    codec::put_u16(b, 2, 1);
                    codec::put_u32(b, INT_CHILD0, old_root);
                    codec::put_u64(b, INT_CHILD0 + 4, sep);
                    codec::put_u32(b, INT_CHILD0 + 12, right);
                });
                self.root = new_root;
                self.height += 1;
            }
        }
    }

    /// Point lookup.
    ///
    /// Index pages are load-bearing for the whole lookup, so any page
    /// error aborts it (no partial answer is possible).
    pub fn try_get(&self, key: u64) -> StorageResult<Option<u64>> {
        let mut page = self.root;
        loop {
            enum Step {
                Descend(PageId),
                Leaf(Option<u64>),
            }
            let step = self.pool.try_read(page, |b| {
                if b[0] == 1 {
                    let n = codec::get_u16(b, 2) as usize;
                    Step::Leaf(leaf_search(b, n, key))
                } else {
                    Step::Descend(internal_child_for(b, key))
                }
            })?;
            match step {
                Step::Descend(child) => page = child,
                Step::Leaf(v) => return Ok(v),
            }
        }
    }

    /// Infallible [`Self::try_get`]; panics on storage errors.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.try_get(key)
            .unwrap_or_else(|e| panic!("btree get: {e}"))
    }

    /// Visit all `(key, value)` pairs with `lo <= key <= hi` in order.
    ///
    /// Implemented as a pure top-down descent into the children whose key
    /// ranges intersect `[lo, hi]` — deliberately *not* via the leaf
    /// sibling chain. Copy-on-write updates ([`Self::cow_update_values`])
    /// relocate leaves without rewriting their left siblings, so sibling
    /// pointers are only a hint for external sequential readers; treating
    /// them as authoritative would walk a scan from a new tree into
    /// pre-edit pages.
    pub fn try_range(&self, lo: u64, hi: u64, mut f: impl FnMut(u64, u64)) -> StorageResult<()> {
        if lo > hi {
            return Ok(());
        }
        self.range_rec(self.root, lo, hi, &mut f)
    }

    fn range_rec<F: FnMut(u64, u64)>(
        &self,
        page: PageId,
        lo: u64,
        hi: u64,
        f: &mut F,
    ) -> StorageResult<()> {
        enum Node {
            Leaf(Vec<(u64, u64)>),
            Internal(Vec<PageId>),
        }
        let node = self.pool.try_read(page, |b| {
            if b[0] == 1 {
                let n = codec::get_u16(b, 2) as usize;
                let mut pairs = Vec::new();
                for i in 0..n {
                    let off = HDR + i * LEAF_ENTRY;
                    let k = codec::get_u64(b, off);
                    if k > hi {
                        break;
                    }
                    if k >= lo {
                        pairs.push((k, codec::get_u64(b, off + 8)));
                    }
                }
                Node::Leaf(pairs)
            } else {
                let (keys, children) = read_internal(b);
                // Child `j` covers keys in `[keys[j-1], keys[j])`.
                let start = keys.partition_point(|&k| k <= lo);
                let end = keys.partition_point(|&k| k <= hi);
                Node::Internal(children[start..=end].to_vec())
            }
        })?;
        match node {
            Node::Leaf(pairs) => {
                for (k, v) in pairs {
                    f(k, v);
                }
            }
            Node::Internal(children) => {
                for child in children {
                    self.range_rec(child, lo, hi, f)?;
                }
            }
        }
        Ok(())
    }

    /// Copy-on-write value overwrite: produce a new tree in which every
    /// `(key, value)` in `updates` (sorted, strictly ascending by key;
    /// every key must already exist) maps to its new value, without
    /// modifying any page of this tree. Only the leaves holding updated
    /// keys and their ancestor paths are copied to freshly allocated
    /// pages; every other page is shared between old and new tree —
    /// readers of the old root remain fully isolated.
    pub fn cow_update_values(&self, updates: &[(u64, u64)]) -> StorageResult<BTree> {
        debug_assert!(updates.windows(2).all(|w| w[0].0 < w[1].0));
        let root = if updates.is_empty() {
            self.root
        } else {
            self.cow_rec(self.root, updates)?
        };
        Ok(BTree {
            pool: Arc::clone(&self.pool),
            root,
            len: self.len,
            height: self.height,
        })
    }

    /// Copy the path(s) from `page` down to every update; returns the new
    /// page id standing in for `page`.
    fn cow_rec(&self, page: PageId, updates: &[(u64, u64)]) -> StorageResult<PageId> {
        enum Node {
            Leaf(Vec<u64>, Vec<u64>, PageId),
            Internal(Vec<u64>, Vec<PageId>),
        }
        let node = self.pool.try_read(page, |b| {
            if b[0] == 1 {
                let n = codec::get_u16(b, 2) as usize;
                let mut keys = Vec::with_capacity(n);
                let mut vals = Vec::with_capacity(n);
                for i in 0..n {
                    let off = HDR + i * LEAF_ENTRY;
                    keys.push(codec::get_u64(b, off));
                    vals.push(codec::get_u64(b, off + 8));
                }
                Node::Leaf(keys, vals, codec::get_u32(b, 4))
            } else {
                let (keys, children) = read_internal(b);
                Node::Internal(keys, children)
            }
        })?;
        match node {
            Node::Leaf(keys, mut vals, next) => {
                for &(k, v) in updates {
                    let i = keys.binary_search(&k).map_err(|_| {
                        StorageError::corrupt(page, format!("cow update of absent key {k}"))
                    })?;
                    vals[i] = v;
                }
                let fresh = self.pool.try_allocate()?;
                // The sibling pointer is copied as-is: it still names the
                // *old* right sibling and is advisory only (see
                // `try_range`).
                try_write_leaf(&self.pool, fresh, &keys, &vals, next)?;
                Ok(fresh)
            }
            Node::Internal(keys, mut children) => {
                let mut any = false;
                let mut lo = 0usize;
                for j in 0..children.len() {
                    // Child `j` covers update keys in `[keys[j-1], keys[j])`.
                    let hi = if j < keys.len() {
                        lo + updates[lo..].partition_point(|&(k, _)| k < keys[j])
                    } else {
                        updates.len()
                    };
                    if lo < hi {
                        children[j] = self.cow_rec(children[j], &updates[lo..hi])?;
                        any = true;
                    }
                    lo = hi;
                }
                debug_assert!(any, "internal node reached with no updates");
                let fresh = self.pool.try_allocate()?;
                try_write_internal(&self.pool, fresh, &keys, &children)?;
                Ok(fresh)
            }
        }
    }

    /// Infallible [`Self::try_range`]; panics on storage errors.
    pub fn range(&self, lo: u64, hi: u64, f: impl FnMut(u64, u64)) {
        self.try_range(lo, hi, f)
            .unwrap_or_else(|e| panic!("btree range: {e}"))
    }

    fn insert_rec(&mut self, page: PageId, key: u64, value: u64) -> InsertResult {
        let is_leaf = self.pool.read(page, |b| b[0] == 1);
        if is_leaf {
            return self.leaf_insert(page, key, value);
        }
        let child = self.pool.read(page, |b| internal_child_for(b, key));
        match self.insert_rec(child, key, value) {
            InsertResult::Done => InsertResult::Done,
            InsertResult::Split(sep, right) => self.internal_insert(page, sep, right),
        }
    }

    fn leaf_insert(&mut self, page: PageId, key: u64, value: u64) -> InsertResult {
        // Read entries, splice, write back — possibly splitting.
        let (mut keys, mut vals, next) = self.pool.read(page, |b| {
            let n = codec::get_u16(b, 2) as usize;
            let mut keys = Vec::with_capacity(n + 1);
            let mut vals = Vec::with_capacity(n + 1);
            for i in 0..n {
                let off = HDR + i * LEAF_ENTRY;
                keys.push(codec::get_u64(b, off));
                vals.push(codec::get_u64(b, off + 8));
            }
            (keys, vals, codec::get_u32(b, 4))
        });
        match keys.binary_search(&key) {
            Ok(i) => {
                vals[i] = value; // overwrite
            }
            Err(i) => {
                keys.insert(i, key);
                vals.insert(i, value);
                self.len += 1;
            }
        }
        if keys.len() <= LEAF_CAP {
            write_leaf(&self.pool, page, &keys, &vals, next);
            return InsertResult::Done;
        }
        // Split in the middle.
        let mid = keys.len() / 2;
        let right = self.pool.allocate();
        let sep = keys[mid];
        write_leaf(&self.pool, right, &keys[mid..], &vals[mid..], next);
        write_leaf(&self.pool, page, &keys[..mid], &vals[..mid], right);
        InsertResult::Split(sep, right)
    }

    fn internal_insert(&mut self, page: PageId, sep: u64, right: PageId) -> InsertResult {
        let (mut keys, mut children) = self.pool.read(page, read_internal);
        let pos = keys.partition_point(|&k| k <= sep);
        keys.insert(pos, sep);
        children.insert(pos + 1, right);
        if keys.len() <= INT_CAP {
            write_internal(&self.pool, page, &keys, &children);
            return InsertResult::Done;
        }
        let mid = keys.len() / 2;
        let up = keys[mid];
        let right_page = self.pool.allocate();
        write_internal(
            &self.pool,
            right_page,
            &keys[mid + 1..],
            &children[mid + 1..],
        );
        write_internal(&self.pool, page, &keys[..mid], &children[..=mid]);
        InsertResult::Split(up, right_page)
    }

    /// Build a tree from key-sorted pairs, packing leaves to `fill` (0–1).
    ///
    /// Panics if the input is not strictly ascending by key.
    pub fn bulk_load(
        pool: Arc<BufferPool>,
        pairs: impl IntoIterator<Item = (u64, u64)>,
        fill: f64,
    ) -> Self {
        let per_leaf = ((LEAF_CAP as f64 * fill) as usize).clamp(1, LEAF_CAP);
        let per_int = ((INT_CAP as f64 * fill) as usize).clamp(2, INT_CAP);

        // Build the leaf level.
        let mut leaves: Vec<(u64, PageId)> = Vec::new(); // (first key, page)
        let mut buf_keys: Vec<u64> = Vec::new();
        let mut buf_vals: Vec<u64> = Vec::new();
        let mut len = 0u64;
        let mut last_key: Option<u64> = None;
        let flush = |keys: &mut Vec<u64>, vals: &mut Vec<u64>, leaves: &mut Vec<(u64, PageId)>| {
            if keys.is_empty() {
                return;
            }
            let page = pool.allocate();
            write_leaf(&pool, page, keys, vals, NO_PAGE);
            if let Some(&(_, prev)) = leaves.last() {
                pool.write(prev, |b| codec::put_u32(b, 4, page));
            }
            leaves.push((keys[0], page));
            keys.clear();
            vals.clear();
        };
        for (k, v) in pairs {
            if let Some(prev) = last_key {
                assert!(k > prev, "bulk_load input must be strictly ascending");
            }
            last_key = Some(k);
            buf_keys.push(k);
            buf_vals.push(v);
            len += 1;
            if buf_keys.len() == per_leaf {
                flush(&mut buf_keys, &mut buf_vals, &mut leaves);
            }
        }
        flush(&mut buf_keys, &mut buf_vals, &mut leaves);
        if leaves.is_empty() {
            return BTree::create(pool);
        }

        // Build internal levels bottom-up.
        let mut level: Vec<(u64, PageId)> = leaves;
        let mut height = 1;
        while level.len() > 1 {
            height += 1;
            let mut next_level = Vec::new();
            for chunk in level.chunks(per_int + 1) {
                let page = pool.allocate();
                let keys: Vec<u64> = chunk[1..].iter().map(|&(k, _)| k).collect();
                let children: Vec<PageId> = chunk.iter().map(|&(_, p)| p).collect();
                write_internal(&pool, page, &keys, &children);
                next_level.push((chunk[0].0, page));
            }
            level = next_level;
        }
        let root = level[0].1;
        BTree {
            pool,
            root,
            len,
            height,
        }
    }
}

fn leaf_search(b: &[u8; PAGE_SIZE], n: usize, key: u64) -> Option<u64> {
    let mut lo = 0usize;
    let mut hi = n;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let k = codec::get_u64(b, HDR + mid * LEAF_ENTRY);
        match k.cmp(&key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => {
                return Some(codec::get_u64(b, HDR + mid * LEAF_ENTRY + 8))
            }
        }
    }
    None
}

/// Child pointer to follow for `key` in an internal node.
fn internal_child_for(b: &[u8; PAGE_SIZE], key: u64) -> PageId {
    let n = codec::get_u16(b, 2) as usize;
    // First index whose key is > `key`; descend into that child slot.
    let mut lo = 0usize;
    let mut hi = n;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let k = codec::get_u64(b, INT_CHILD0 + 4 + mid * INT_ENTRY);
        if k <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    if lo == 0 {
        codec::get_u32(b, INT_CHILD0)
    } else {
        codec::get_u32(b, INT_CHILD0 + 4 + (lo - 1) * INT_ENTRY + 8)
    }
}

fn read_internal(b: &[u8; PAGE_SIZE]) -> (Vec<u64>, Vec<PageId>) {
    let n = codec::get_u16(b, 2) as usize;
    let mut keys = Vec::with_capacity(n + 1);
    let mut children = Vec::with_capacity(n + 2);
    children.push(codec::get_u32(b, INT_CHILD0));
    for i in 0..n {
        let off = INT_CHILD0 + 4 + i * INT_ENTRY;
        keys.push(codec::get_u64(b, off));
        children.push(codec::get_u32(b, off + 8));
    }
    (keys, children)
}

fn write_internal(pool: &BufferPool, page: PageId, keys: &[u64], children: &[PageId]) {
    try_write_internal(pool, page, keys, children).unwrap_or_else(|e| panic!("btree write: {e}"))
}

fn write_leaf(pool: &BufferPool, page: PageId, keys: &[u64], vals: &[u64], next: PageId) {
    try_write_leaf(pool, page, keys, vals, next).unwrap_or_else(|e| panic!("btree write: {e}"))
}

fn try_write_leaf(
    pool: &BufferPool,
    page: PageId,
    keys: &[u64],
    vals: &[u64],
    next: PageId,
) -> StorageResult<()> {
    assert_eq!(keys.len(), vals.len());
    assert!(keys.len() <= LEAF_CAP);
    pool.try_write(page, |b| {
        b[0] = 1;
        codec::put_u16(b, 2, keys.len() as u16);
        codec::put_u32(b, 4, next);
        for (i, (&k, &v)) in keys.iter().zip(vals).enumerate() {
            let off = HDR + i * LEAF_ENTRY;
            codec::put_u64(b, off, k);
            codec::put_u64(b, off + 8, v);
        }
    })
}

fn try_write_internal(
    pool: &BufferPool,
    page: PageId,
    keys: &[u64],
    children: &[PageId],
) -> StorageResult<()> {
    assert_eq!(children.len(), keys.len() + 1);
    assert!(keys.len() <= INT_CAP);
    pool.try_write(page, |b| {
        b[0] = 0;
        codec::put_u16(b, 2, keys.len() as u16);
        codec::put_u32(b, INT_CHILD0, children[0]);
        for (i, (&k, &c)) in keys.iter().zip(&children[1..]).enumerate() {
            let off = INT_CHILD0 + 4 + i * INT_ENTRY;
            codec::put_u64(b, off, k);
            codec::put_u32(b, off + 8, c);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use std::collections::BTreeMap;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Box::new(MemStore::new()), 256))
    }

    #[test]
    fn empty_tree() {
        let t = BTree::create(pool());
        assert!(t.is_empty());
        assert_eq!(t.get(0), None);
        assert_eq!(t.get(u64::MAX), None);
        let mut seen = 0;
        t.range(0, u64::MAX, |_, _| seen += 1);
        assert_eq!(seen, 0);
    }

    #[test]
    fn insert_get_small() {
        let mut t = BTree::create(pool());
        for k in [5u64, 1, 9, 3, 7] {
            t.insert(k, k * 10);
        }
        assert_eq!(t.len(), 5);
        for k in [5u64, 1, 9, 3, 7] {
            assert_eq!(t.get(k), Some(k * 10));
        }
        assert_eq!(t.get(2), None);
    }

    #[test]
    fn overwrite_keeps_len() {
        let mut t = BTree::create(pool());
        t.insert(1, 10);
        t.insert(1, 20);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(1), Some(20));
    }

    #[test]
    fn many_inserts_force_splits() {
        let mut t = BTree::create(pool());
        let n = 20_000u64;
        // Insert in a scrambled order.
        for i in 0..n {
            let k = (i * 7919) % n;
            t.insert(k, k + 1);
        }
        assert_eq!(t.len(), n);
        assert!(t.height() >= 2, "20k keys must split the root");
        for k in (0..n).step_by(997) {
            assert_eq!(t.get(k), Some(k + 1), "key {k}");
        }
    }

    #[test]
    fn range_scan_matches_model() {
        let mut t = BTree::create(pool());
        let mut model = BTreeMap::new();
        for i in 0..5000u64 {
            let k = (i * 2654435761) % 100_000;
            t.insert(k, i);
            model.insert(k, i);
        }
        for (lo, hi) in [(0u64, 99_999), (500, 700), (99_000, 99_999), (42, 42)] {
            let mut got = Vec::new();
            t.range(lo, hi, |k, v| got.push((k, v)));
            let want: Vec<_> = model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
            assert_eq!(got, want, "range [{lo}, {hi}]");
        }
        // Inverted range yields nothing (and must not panic).
        let mut n = 0;
        t.range(70, 20, |_, _| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let p = pool();
        let pairs: Vec<(u64, u64)> = (0..30_000u64).map(|k| (k * 3, k)).collect();
        let t = BTree::bulk_load(Arc::clone(&p), pairs.iter().copied(), 0.8);
        assert_eq!(t.len(), 30_000);
        for &(k, v) in pairs.iter().step_by(511) {
            assert_eq!(t.get(k), Some(v));
        }
        assert_eq!(t.get(1), None); // between keys
        let mut got = Vec::new();
        t.range(0, u64::MAX, |k, v| got.push((k, v)));
        assert_eq!(got, pairs);
    }

    #[test]
    fn bulk_load_empty() {
        let t = BTree::bulk_load(pool(), std::iter::empty(), 0.8);
        assert!(t.is_empty());
        assert_eq!(t.get(7), None);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn bulk_load_rejects_unsorted() {
        BTree::bulk_load(pool(), [(2u64, 0u64), (1, 0)], 0.8);
    }

    #[test]
    fn bulk_loaded_tree_accepts_inserts() {
        let p = pool();
        let mut t = BTree::bulk_load(Arc::clone(&p), (0..1000u64).map(|k| (k * 2, k)), 0.9);
        for k in 0..1000u64 {
            t.insert(k * 2 + 1, k + 5000);
        }
        assert_eq!(t.len(), 2000);
        assert_eq!(t.get(501), Some(250 + 5000));
        assert_eq!(t.get(500), Some(250));
    }

    #[test]
    fn point_lookup_costs_height_accesses() {
        let p = pool();
        let t = BTree::bulk_load(Arc::clone(&p), (0..100_000u64).map(|k| (k, k)), 1.0);
        p.flush_all();
        p.reset_stats();
        t.get(54_321);
        assert_eq!(p.stats().reads as u32, t.height(), "one access per level");
    }

    #[test]
    fn cow_update_isolates_old_tree_and_shares_untouched_pages() {
        let p = pool();
        let t = BTree::bulk_load(Arc::clone(&p), (0..400_000u64).map(|k| (k, k)), 1.0);
        assert!(t.height() >= 3);
        let before = p.num_pages();

        let updates: Vec<(u64, u64)> = vec![(54_321, 999), (54_322, 998)];
        let t2 = t.cow_update_values(&updates).unwrap();

        // The old tree still reads the old values; the new one the new.
        assert_eq!(t.get(54_321), Some(54_321));
        assert_eq!(t.get(54_322), Some(54_322));
        assert_eq!(t2.get(54_321), Some(999));
        assert_eq!(t2.get(54_322), Some(998));
        assert_eq!(t2.get(54_320), Some(54_320), "untouched key visible");
        assert_eq!(t2.len(), t.len());
        assert_eq!(t2.height(), t.height());

        // Both keys live in one leaf: exactly one path was copied.
        assert_eq!(
            p.num_pages() - before,
            t.height(),
            "CoW must allocate one page per level, sharing the rest"
        );

        // Full scans agree except at the updated keys.
        let mut old_scan = Vec::new();
        let mut new_scan = Vec::new();
        t.range(54_000, 55_000, |k, v| old_scan.push((k, v)));
        t2.range(54_000, 55_000, |k, v| new_scan.push((k, v)));
        assert_eq!(old_scan.len(), new_scan.len());
        for (o, n) in old_scan.iter().zip(&new_scan) {
            assert_eq!(o.0, n.0);
            match o.0 {
                54_321 => assert_eq!(n.1, 999),
                54_322 => assert_eq!(n.1, 998),
                _ => assert_eq!(o.1, n.1),
            }
        }
    }

    #[test]
    fn cow_update_of_absent_key_is_a_typed_error() {
        let p = pool();
        let t = BTree::bulk_load(Arc::clone(&p), (0..100u64).map(|k| (k * 2, k)), 1.0);
        let err = t.cow_update_values(&[(3, 0)]).map(|_| ()).unwrap_err();
        assert!(matches!(err, crate::error::StorageError::Corrupt { .. }));
    }

    #[test]
    fn cow_update_empty_is_a_no_op_alias() {
        let p = pool();
        let t = BTree::bulk_load(Arc::clone(&p), (0..100u64).map(|k| (k, k)), 1.0);
        let before = p.num_pages();
        let t2 = t.cow_update_values(&[]).unwrap();
        assert_eq!(p.num_pages(), before);
        assert_eq!(t2.root_page(), t.root_page());
    }

    #[test]
    fn range_descent_does_not_depend_on_sibling_chain() {
        // Corrupt every leaf's next pointer; range scans must not care.
        let p = pool();
        let t = BTree::bulk_load(Arc::clone(&p), (0..5_000u64).map(|k| (k, k + 1)), 0.8);
        for page in 0..p.num_pages() {
            let is_leaf = p.read(page, |b| b[0] == 1);
            if is_leaf {
                p.write(page, |b| codec::put_u32(b, 4, 0xDEAD_BEEF));
            }
        }
        let mut got = Vec::new();
        t.range(100, 4_900, |k, v| got.push((k, v)));
        assert_eq!(got.len(), 4_801);
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(got.iter().all(|&(k, v)| v == k + 1));
    }

    #[test]
    fn data_survives_cold_restart_of_cache() {
        let p = pool();
        let mut t = BTree::create(Arc::clone(&p));
        for k in 0..3000u64 {
            t.insert(k, !k);
        }
        p.flush_all();
        for k in (0..3000u64).step_by(100) {
            assert_eq!(t.get(k), Some(!k));
        }
    }
}

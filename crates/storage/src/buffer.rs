//! Buffer pool with LRU eviction and access counting.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::page::{zeroed_page, PageBuf, PageId, PAGE_SIZE};
use crate::stats::{AccessStats, StatsSnapshot};
use crate::store::PageStore;

struct Frame {
    buf: PageBuf,
    dirty: bool,
    /// LRU tick of the most recent touch; also the key into `Inner::lru`.
    tick: u64,
}

struct Inner {
    cache: HashMap<PageId, Frame>,
    /// tick → page id; the smallest tick is the eviction victim.
    lru: BTreeMap<u64, PageId>,
    next_tick: u64,
    capacity: usize,
}

/// A buffer pool over a [`PageStore`].
///
/// * `read`/`write` run a closure against the cached page, fetching from
///   the store on a miss (counted in [`AccessStats`]).
/// * `flush_all` writes every dirty page back and empties the cache — this
///   is the paper's "the database and system buffer is flushed before each
///   test".
///
/// The pool serializes all access through one mutex. The workloads in this
/// workspace are single-threaded query loops, so simplicity wins over
/// latch-per-frame concurrency.
pub struct BufferPool {
    store: Box<dyn PageStore>,
    inner: Mutex<Inner>,
    stats: Arc<AccessStats>,
}

impl BufferPool {
    /// `capacity` is the number of resident pages (e.g. 1024 ≈ 8 MiB).
    pub fn new(store: Box<dyn PageStore>, capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        BufferPool {
            store,
            inner: Mutex::new(Inner {
                cache: HashMap::new(),
                lru: BTreeMap::new(),
                next_tick: 0,
                capacity,
            }),
            stats: Arc::new(AccessStats::new()),
        }
    }

    /// Allocate a fresh zeroed page in the store and cache it.
    ///
    /// Allocation itself is not counted as a read: it is part of dataset
    /// construction, which the paper excludes ("not measured are those
    /// once-off costs").
    pub fn allocate(&self) -> PageId {
        let id = self.store.allocate();
        let mut inner = self.inner.lock();
        self.install(&mut inner, id, zeroed_page(), true);
        id
    }

    /// Run `f` against an immutable view of the page.
    pub fn read<R>(&self, id: PageId, f: impl FnOnce(&[u8; PAGE_SIZE]) -> R) -> R {
        let mut inner = self.inner.lock();
        self.ensure_cached(&mut inner, id);
        let frame = inner.cache.get(&id).expect("just cached");
        f(&frame.buf)
    }

    /// Run `f` against a mutable view of the page and mark it dirty.
    pub fn write<R>(&self, id: PageId, f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R) -> R {
        let mut inner = self.inner.lock();
        self.ensure_cached(&mut inner, id);
        let frame = inner.cache.get_mut(&id).expect("just cached");
        frame.dirty = true;
        f(&mut frame.buf)
    }

    /// Write back all dirty pages and drop the entire cache. After this
    /// call every page access is a miss — a cold buffer.
    pub fn flush_all(&self) {
        let mut inner = self.inner.lock();
        for (id, frame) in inner.cache.iter() {
            if frame.dirty {
                self.stats.record_write();
                self.store.write_page(*id, &frame.buf);
            }
        }
        inner.cache.clear();
        inner.lru.clear();
        self.store.sync();
    }

    /// Number of pages allocated in the underlying store.
    pub fn num_pages(&self) -> u32 {
        self.store.num_pages()
    }

    /// Number of pages currently resident in the cache.
    pub fn resident(&self) -> usize {
        self.inner.lock().cache.len()
    }

    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Shared handle to the counters (for sub-systems that want to record
    /// logical accesses of their own).
    pub fn stats_handle(&self) -> Arc<AccessStats> {
        Arc::clone(&self.stats)
    }

    fn ensure_cached(&self, inner: &mut Inner, id: PageId) {
        if let Some(frame) = inner.cache.get_mut(&id) {
            // Refresh recency.
            let old = frame.tick;
            inner.next_tick += 1;
            let tick = inner.next_tick;
            inner.cache.get_mut(&id).unwrap().tick = tick;
            inner.lru.remove(&old);
            inner.lru.insert(tick, id);
            return;
        }
        self.stats.record_read();
        let mut buf = zeroed_page();
        self.store.read_page(id, &mut buf);
        self.install(inner, id, buf, false);
    }

    fn install(&self, inner: &mut Inner, id: PageId, buf: PageBuf, dirty: bool) {
        while inner.cache.len() >= inner.capacity {
            let (&tick, &victim) = inner.lru.iter().next().expect("lru nonempty");
            inner.lru.remove(&tick);
            let frame = inner.cache.remove(&victim).expect("victim cached");
            if frame.dirty {
                self.stats.record_write();
                self.store.write_page(victim, &frame.buf);
            }
        }
        inner.next_tick += 1;
        let tick = inner.next_tick;
        inner.lru.insert(tick, id);
        inner.cache.insert(id, Frame { buf, dirty, tick });
    }
}

impl Drop for BufferPool {
    fn drop(&mut self) {
        self.flush_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(Box::new(MemStore::new()), cap)
    }

    #[test]
    fn write_then_read_back() {
        let p = pool(8);
        let id = p.allocate();
        p.write(id, |b| b[42] = 7);
        assert_eq!(p.read(id, |b| b[42]), 7);
    }

    #[test]
    fn cache_hit_is_not_a_disk_access() {
        let p = pool(8);
        let id = p.allocate();
        p.flush_all();
        p.reset_stats();
        p.read(id, |_| ());
        p.read(id, |_| ());
        p.read(id, |_| ());
        assert_eq!(p.stats().reads, 1, "only the first read misses");
    }

    #[test]
    fn flush_makes_cache_cold() {
        let p = pool(8);
        let a = p.allocate();
        let b = p.allocate();
        p.write(a, |buf| buf[0] = 1);
        p.write(b, |buf| buf[0] = 2);
        p.flush_all();
        p.reset_stats();
        assert_eq!(p.read(a, |buf| buf[0]), 1);
        assert_eq!(p.read(b, |buf| buf[0]), 2);
        assert_eq!(p.stats().reads, 2);
        assert_eq!(p.resident(), 2);
    }

    #[test]
    fn eviction_preserves_dirty_data() {
        // Capacity 2: writing 10 pages forces evictions; all data must
        // survive the round trip through the store.
        let p = pool(2);
        let ids: Vec<_> = (0..10).map(|_| p.allocate()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.write(id, |b| b[0] = i as u8 + 1);
        }
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(p.read(id, |b| b[0]), i as u8 + 1, "page {i}");
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let p = pool(2);
        let a = p.allocate();
        let b = p.allocate();
        let c = p.allocate(); // evicts a (oldest)
        p.flush_all();
        p.reset_stats();
        // Warm a and b.
        p.read(a, |_| ());
        p.read(b, |_| ());
        assert_eq!(p.stats().reads, 2);
        // Touch a so b becomes LRU, then read c: b should be evicted.
        p.read(a, |_| ());
        p.read(c, |_| ());
        assert_eq!(p.stats().reads, 3);
        // a must still be a hit, b must now miss.
        p.read(a, |_| ());
        assert_eq!(p.stats().reads, 3, "a was evicted but should not be");
        p.read(b, |_| ());
        assert_eq!(p.stats().reads, 4, "b should have been evicted");
    }

    #[test]
    fn write_counts_on_flush() {
        let p = pool(8);
        let id = p.allocate();
        p.reset_stats();
        p.write(id, |b| b[0] = 9);
        assert_eq!(p.stats().writes, 0, "writes deferred until flush/evict");
        p.flush_all();
        assert_eq!(p.stats().writes, 1);
    }

    #[test]
    fn allocate_is_free_of_read_accesses() {
        let p = pool(8);
        p.reset_stats();
        let id = p.allocate();
        p.write(id, |b| b[0] = 1);
        assert_eq!(p.stats().reads, 0);
    }
}

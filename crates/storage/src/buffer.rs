//! Sharded buffer pool with per-shard LRU eviction, access counting,
//! page checksums and bounded retry.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::checksum::{seal_page, verify_page};
use crate::error::StorageResult;
use crate::page::{zeroed_page, PageBuf, PageId, PAGE_SIZE};
use crate::stats::{AccessStats, StatsSnapshot};
use crate::store::PageStore;

/// Default number of times a failed page read is re-issued before the
/// error propagates.
pub const DEFAULT_MAX_RETRIES: u32 = 4;

/// Default number of lock-striped segments. 16 keeps contention low for
/// a handful of query workers (the expected 2–8) while per-shard LRU
/// state stays large enough that striping does not distort eviction for
/// any pool of a few hundred frames or more.
pub const DEFAULT_SHARDS: usize = 16;

struct Frame {
    buf: PageBuf,
    dirty: bool,
    /// LRU tick of the most recent touch; also the key into `Inner::lru`.
    tick: u64,
}

struct Inner {
    cache: HashMap<PageId, Frame>,
    /// tick → page id; the smallest tick is the eviction victim.
    lru: BTreeMap<u64, PageId>,
    next_tick: u64,
    capacity: usize,
}

impl Inner {
    fn with_capacity(capacity: usize) -> Self {
        Inner {
            cache: HashMap::new(),
            lru: BTreeMap::new(),
            next_tick: 0,
            capacity,
        }
    }
}

/// One lock stripe: its own mutex-protected LRU cache plus a mirror of
/// the access counters, so concurrent readers of disjoint pages never
/// touch the same lock and per-shard traffic stays observable.
struct Shard {
    inner: Mutex<Inner>,
    stats: AccessStats,
}

/// A buffer pool over a [`PageStore`].
///
/// * `try_read`/`try_write` run a closure against the cached page,
///   fetching from the store on a miss (counted in [`AccessStats`]). A
///   fetched page is checksum-verified; verification failures and
///   transient I/O errors are retried up to `max_retries` times (each
///   re-issue counted in the `retries` stat) before the error surfaces.
/// * `read`/`write`/`allocate`/`flush_all` are the infallible wrappers
///   the write-once build paths use; they panic on storage errors.
/// * `try_flush_all` seals (checksums) and writes back every dirty page
///   and empties the cache — this is the paper's "the database and system
///   buffer is flushed before each test".
///
/// # Concurrency
///
/// The pool is sharded: page `id` lives in shard `id % num_shards`, each
/// shard behind its own mutex with its own LRU state. Threads touching
/// disjoint pages in different shards proceed without contention; two
/// threads missing on the *same* page serialize on its shard, so the
/// second waits for the first's fetch and then hits the cache — a page
/// is fetched from the store at most once per residency, which keeps the
/// logical disk-access count identical to a sequential execution of the
/// same page-touch set (absent capacity evictions).
///
/// Lock ordering: no code path holds two shard locks at once.
/// `try_flush_all` visits shards one at a time in index order, and every
/// other operation touches exactly the one shard its page maps to, so
/// the pool cannot deadlock against itself.
///
/// `capacity` is striped: each shard holds up to
/// `max(1, capacity / num_shards)` frames (rounded up), evicting by its
/// own LRU order. A pool that must reproduce exact *global* LRU behavior
/// (some unit tests; pathological single-page workloads) can ask for one
/// shard via [`Self::with_shard_count`].
pub struct BufferPool {
    store: Box<dyn PageStore>,
    shards: Vec<Shard>,
    stats: Arc<AccessStats>,
    max_retries: u32,
}

impl BufferPool {
    /// `capacity` is the number of resident pages (e.g. 1024 ≈ 8 MiB),
    /// striped over `min(DEFAULT_SHARDS, capacity)` shards.
    pub fn new(store: Box<dyn PageStore>, capacity: usize) -> Self {
        let shards = DEFAULT_SHARDS.min(capacity.max(1));
        Self::with_shard_count(store, capacity, shards)
    }

    /// [`Self::new`] with an explicit shard count (clamped to ≥ 1).
    pub fn with_shard_count(store: Box<dyn PageStore>, capacity: usize, shards: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        let n = shards.max(1);
        let per_shard = capacity.div_ceil(n).max(1);
        BufferPool {
            store,
            shards: (0..n)
                .map(|_| Shard {
                    inner: Mutex::new(Inner::with_capacity(per_shard)),
                    stats: AccessStats::new(),
                })
                .collect(),
            stats: Arc::new(AccessStats::new()),
            max_retries: DEFAULT_MAX_RETRIES,
        }
    }

    /// Override the retry budget for failed page reads (0 disables).
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// Number of lock stripes.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, id: PageId) -> &Shard {
        &self.shards[id as usize % self.shards.len()]
    }

    /// Allocate a fresh zeroed page in the store and cache it.
    ///
    /// Allocation itself is not counted as a read: it is part of dataset
    /// construction, which the paper excludes ("not measured are those
    /// once-off costs"). The new frame starts dirty so the page is sealed
    /// with a checksum on its first flush/evict even if never written.
    pub fn try_allocate(&self) -> StorageResult<PageId> {
        let id = self.store.allocate()?;
        let shard = self.shard(id);
        let mut inner = shard.inner.lock();
        self.install(shard, &mut inner, id, zeroed_page(), true)?;
        Ok(id)
    }

    /// Infallible [`Self::try_allocate`] for build paths.
    pub fn allocate(&self) -> PageId {
        self.try_allocate()
            .unwrap_or_else(|e| panic!("allocate: {e}"))
    }

    /// Run `f` against an immutable view of the page.
    ///
    /// `f` runs while the page's shard lock is held: keep it short (the
    /// record-decode closures this workspace passes are) — other pages in
    /// the same shard are blocked for its duration, other shards are not.
    pub fn try_read<R>(
        &self,
        id: PageId,
        f: impl FnOnce(&[u8; PAGE_SIZE]) -> R,
    ) -> StorageResult<R> {
        let shard = self.shard(id);
        let mut inner = shard.inner.lock();
        self.ensure_cached(shard, &mut inner, id)?;
        let frame = inner.cache.get(&id).expect("just cached");
        Ok(f(&frame.buf))
    }

    /// Infallible [`Self::try_read`]; panics on storage errors.
    pub fn read<R>(&self, id: PageId, f: impl FnOnce(&[u8; PAGE_SIZE]) -> R) -> R {
        self.try_read(id, f)
            .unwrap_or_else(|e| panic!("read page {id}: {e}"))
    }

    /// Run `f` against a mutable view of the page and mark it dirty.
    pub fn try_write<R>(
        &self,
        id: PageId,
        f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R,
    ) -> StorageResult<R> {
        let shard = self.shard(id);
        let mut inner = shard.inner.lock();
        self.ensure_cached(shard, &mut inner, id)?;
        let frame = inner.cache.get_mut(&id).expect("just cached");
        frame.dirty = true;
        Ok(f(&mut frame.buf))
    }

    /// Infallible [`Self::try_write`]; panics on storage errors.
    pub fn write<R>(&self, id: PageId, f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R) -> R {
        self.try_write(id, f)
            .unwrap_or_else(|e| panic!("write page {id}: {e}"))
    }

    /// Write back all dirty pages (sealing each with its checksum) and
    /// drop the entire cache. After this call every page access is a miss
    /// — a cold buffer.
    ///
    /// Shards are flushed one at a time in index order (never two locks
    /// at once). Concurrent readers may repopulate already-flushed shards
    /// before the call returns; flushing is a quiescent-state operation,
    /// exactly like the measurement protocol that uses it.
    ///
    /// On error the cache is still emptied (the failed page's data may be
    /// lost — that is the fault being simulated), and the first error is
    /// returned.
    pub fn try_flush_all(&self) -> StorageResult<()> {
        let mut first_err = None;
        for shard in &self.shards {
            let mut inner = shard.inner.lock();
            for (id, frame) in inner.cache.iter_mut() {
                if frame.dirty {
                    self.stats.record_write();
                    shard.stats.record_write();
                    seal_page(&mut frame.buf);
                    if let Err(e) = self.store.write_page(*id, &frame.buf) {
                        first_err.get_or_insert(e);
                    }
                }
            }
            inner.cache.clear();
            inner.lru.clear();
        }
        match self.store.sync() {
            Err(e) if first_err.is_none() => Err(e),
            _ => match first_err {
                Some(e) => Err(e),
                None => Ok(()),
            },
        }
    }

    /// Infallible [`Self::try_flush_all`]; panics on storage errors.
    pub fn flush_all(&self) {
        self.try_flush_all()
            .unwrap_or_else(|e| panic!("flush_all: {e}"));
    }

    /// Number of pages allocated in the underlying store.
    pub fn num_pages(&self) -> u32 {
        self.store.num_pages()
    }

    /// Number of pages currently resident in the cache (all shards).
    pub fn resident(&self) -> usize {
        self.shards.iter().map(|s| s.inner.lock().cache.len()).sum()
    }

    /// Which of `pages` are currently resident, without disturbing the
    /// pool: the probe takes each involved shard's lock exactly once,
    /// never refreshes an LRU tick, and never touches [`AccessStats`] —
    /// a residency question is planner introspection, not a logical
    /// disk access, so it must not age other pages toward eviction or
    /// inflate any read counter. Returns one flag per input page, in
    /// input order (duplicates allowed).
    pub fn residency(&self, pages: &[PageId]) -> Vec<bool> {
        let mut out = vec![false; pages.len()];
        let n = self.shards.len();
        for (si, shard) in self.shards.iter().enumerate() {
            // Lock lazily: shards none of the probed pages map to are
            // never locked at all.
            let mut inner = None;
            for (slot, &page) in pages.iter().enumerate() {
                if page as usize % n == si {
                    let inner = inner.get_or_insert_with(|| shard.inner.lock());
                    out[slot] = inner.cache.contains_key(&page);
                }
            }
        }
        out
    }

    /// How many of `pages` are resident (see [`Self::residency`]).
    pub fn resident_among(&self, pages: &[PageId]) -> usize {
        self.residency(pages).into_iter().filter(|&r| r).count()
    }

    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Per-shard counter snapshots, in shard-index order. Each page
    /// access is mirrored into exactly one shard's counters, so the
    /// field-wise sum over this vector equals [`Self::stats`].
    pub fn shard_stats(&self) -> Vec<StatsSnapshot> {
        self.shards.iter().map(|s| s.stats.snapshot()).collect()
    }

    pub fn reset_stats(&self) {
        self.stats.reset();
        for shard in &self.shards {
            shard.stats.reset();
        }
    }

    /// Shared handle to the global counters (for sub-systems that want to
    /// record logical accesses of their own).
    pub fn stats_handle(&self) -> Arc<AccessStats> {
        Arc::clone(&self.stats)
    }

    fn ensure_cached(&self, shard: &Shard, inner: &mut Inner, id: PageId) -> StorageResult<()> {
        if let Some(frame) = inner.cache.get_mut(&id) {
            // Refresh recency. Disjoint field borrows let the frame stay
            // borrowed while the tick counter and LRU map update.
            let old = frame.tick;
            inner.next_tick += 1;
            frame.tick = inner.next_tick;
            inner.lru.remove(&old);
            inner.lru.insert(inner.next_tick, id);
            return Ok(());
        }
        self.stats.record_read();
        shard.stats.mirror_read();
        let buf = self.fetch_verified(shard, id)?;
        self.install(shard, inner, id, buf, false)
    }

    /// Read `id` from the store and checksum-verify it, re-issuing the
    /// read after retryable failures (transient I/O, corruption) up to
    /// `max_retries` times.
    ///
    /// Runs with the page's shard lock held: a second thread asking for
    /// the same page waits here and then hits the cache, so no page is
    /// double-fetched.
    fn fetch_verified(&self, shard: &Shard, id: PageId) -> StorageResult<PageBuf> {
        let mut attempt = 0u32;
        loop {
            let result: StorageResult<PageBuf> = (|| {
                let mut buf = zeroed_page();
                self.store.read_page(id, &mut buf)?;
                verify_page(id, &buf)?;
                Ok(buf)
            })();
            match result {
                Ok(buf) => return Ok(buf),
                Err(e) => {
                    if !e.is_retryable() || attempt >= self.max_retries {
                        return Err(e);
                    }
                    attempt += 1;
                    self.stats.record_retry();
                    shard.stats.mirror_retry();
                }
            }
        }
    }

    /// Evict the shard's LRU victim, sealing and writing it back if
    /// dirty. Shared by [`Self::install`] (making room for an incoming
    /// page) and [`Self::try_set_capacity`] (shrinking the shard).
    fn evict_one(&self, shard: &Shard, inner: &mut Inner) -> StorageResult<()> {
        let (&tick, &victim) = inner.lru.iter().next().expect("lru nonempty");
        inner.lru.remove(&tick);
        let mut frame = inner.cache.remove(&victim).expect("victim cached");
        if frame.dirty {
            self.stats.record_write();
            shard.stats.record_write();
            seal_page(&mut frame.buf);
            self.store.write_page(victim, &frame.buf)?;
        }
        Ok(())
    }

    /// Re-stripe the pool to a new total `capacity` (pages), in place.
    ///
    /// Growing only raises the per-shard limits. Shrinking additionally
    /// evicts each over-full shard's LRU victims down to the new limit,
    /// sealing and writing back dirty pages exactly like a capacity
    /// eviction on [`Self::install`]. Shards are visited one at a time in
    /// index order (never two locks at once), so this is safe against
    /// concurrent readers; the first write-back error is returned after
    /// every shard has still been resized.
    ///
    /// This is what per-tenant page budgeting builds on: a world catalog
    /// reapportions one global page budget across its open regions'
    /// pools, so a region's share can shrink while its handle stays open.
    pub fn try_set_capacity(&self, capacity: usize) -> StorageResult<()> {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        let per_shard = capacity.div_ceil(self.shards.len()).max(1);
        let mut first_err = None;
        for shard in &self.shards {
            let mut inner = shard.inner.lock();
            inner.capacity = per_shard;
            while inner.cache.len() > inner.capacity {
                if let Err(e) = self.evict_one(shard, &mut inner) {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Infallible [`Self::try_set_capacity`]; panics on storage errors.
    pub fn set_capacity(&self, capacity: usize) {
        self.try_set_capacity(capacity)
            .unwrap_or_else(|e| panic!("set_capacity: {e}"));
    }

    /// Current total frame capacity (sum of the per-shard limits; the
    /// striping rounds the constructor's request up to a shard multiple).
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.inner.lock().capacity).sum()
    }

    fn install(
        &self,
        shard: &Shard,
        inner: &mut Inner,
        id: PageId,
        buf: PageBuf,
        dirty: bool,
    ) -> StorageResult<()> {
        let mut first_err = None;
        while inner.cache.len() >= inner.capacity {
            if let Err(e) = self.evict_one(shard, inner) {
                // The incoming page must still be installed; report
                // the eviction failure afterwards.
                first_err.get_or_insert(e);
            }
        }
        inner.next_tick += 1;
        let tick = inner.next_tick;
        inner.lru.insert(tick, id);
        inner.cache.insert(id, Frame { buf, dirty, tick });
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for BufferPool {
    /// Best-effort write-back: a pool dropped during unwinding (or over a
    /// failing store) must not panic; unflushed data is simply lost,
    /// which the checksum layer will surface as corruption on reopen.
    fn drop(&mut self) {
        let _ = self.try_flush_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StorageError;
    use crate::fault::{FaultConfig, FaultInjector};
    use crate::store::MemStore;

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(Box::new(MemStore::new()), cap)
    }

    /// Exact-LRU pool: one shard, global eviction order.
    fn pool1(cap: usize) -> BufferPool {
        BufferPool::with_shard_count(Box::new(MemStore::new()), cap, 1)
    }

    #[test]
    fn write_then_read_back() {
        let p = pool(8);
        let id = p.allocate();
        p.write(id, |b| b[42] = 7);
        assert_eq!(p.read(id, |b| b[42]), 7);
    }

    #[test]
    fn shrink_evicts_lru_and_preserves_dirty_data() {
        let p = pool1(8);
        let ids: Vec<PageId> = (0..8).map(|_| p.allocate()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.write(id, |b| b[0] = i as u8);
        }
        assert_eq!(p.resident(), 8);
        // Touch the last three so they are the MRU set.
        for &id in &ids[5..] {
            p.read(id, |b| b[0]);
        }
        p.set_capacity(3);
        assert_eq!(p.capacity(), 3);
        assert_eq!(p.resident(), 3);
        // Exactly the MRU set survived; the evicted dirty pages were
        // sealed and written back, so their data reads back intact.
        assert_eq!(p.resident_among(&ids[5..]), 3);
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(p.read(id, |b| b[0]), i as u8, "page {i} after shrink");
        }
    }

    #[test]
    fn grow_raises_the_eviction_threshold() {
        let p = pool1(2);
        let ids: Vec<PageId> = (0..6).map(|_| p.allocate()).collect();
        p.set_capacity(6);
        assert_eq!(p.capacity(), 6);
        for &id in &ids {
            p.read(id, |b| b[0]);
        }
        // All six now fit where two did before.
        assert_eq!(p.resident(), 6);
        assert_eq!(p.resident_among(&ids), 6);
    }

    #[test]
    fn resize_is_striped_over_shards() {
        let p = BufferPool::with_shard_count(Box::new(MemStore::new()), 16, 4);
        assert_eq!(p.capacity(), 16);
        p.set_capacity(6);
        // 6 over 4 shards rounds up to 2 per shard.
        assert_eq!(p.capacity(), 8);
        p.set_capacity(1);
        // Every shard keeps at least one frame.
        assert_eq!(p.capacity(), 4);
    }

    #[test]
    fn cache_hit_is_not_a_disk_access() {
        let p = pool(8);
        let id = p.allocate();
        p.flush_all();
        p.reset_stats();
        p.read(id, |_| ());
        p.read(id, |_| ());
        p.read(id, |_| ());
        assert_eq!(p.stats().reads, 1, "only the first read misses");
    }

    #[test]
    fn flush_makes_cache_cold() {
        let p = pool(8);
        let a = p.allocate();
        let b = p.allocate();
        p.write(a, |buf| buf[0] = 1);
        p.write(b, |buf| buf[0] = 2);
        p.flush_all();
        p.reset_stats();
        assert_eq!(p.read(a, |buf| buf[0]), 1);
        assert_eq!(p.read(b, |buf| buf[0]), 2);
        assert_eq!(p.stats().reads, 2);
        assert_eq!(p.resident(), 2);
    }

    #[test]
    fn eviction_preserves_dirty_data() {
        // Capacity 2: writing 10 pages forces evictions; all data must
        // survive the round trip through the store (any shard count).
        let p = pool(2);
        let ids: Vec<_> = (0..10).map(|_| p.allocate()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.write(id, |b| b[0] = i as u8 + 1);
        }
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(p.read(id, |b| b[0]), i as u8 + 1, "page {i}");
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Global LRU order is only defined for a single shard.
        let p = pool1(2);
        let a = p.allocate();
        let b = p.allocate();
        let c = p.allocate(); // evicts a (oldest)
        p.flush_all();
        p.reset_stats();
        // Warm a and b.
        p.read(a, |_| ());
        p.read(b, |_| ());
        assert_eq!(p.stats().reads, 2);
        // Touch a so b becomes LRU, then read c: b should be evicted.
        p.read(a, |_| ());
        p.read(c, |_| ());
        assert_eq!(p.stats().reads, 3);
        // a must still be a hit, b must now miss.
        p.read(a, |_| ());
        assert_eq!(p.stats().reads, 3, "a was evicted but should not be");
        p.read(b, |_| ());
        assert_eq!(p.stats().reads, 4, "b should have been evicted");
    }

    #[test]
    fn sharding_keeps_disjoint_pages_resident() {
        // 4 shards × 1 frame: pages 0..4 map to distinct shards and must
        // all stay resident despite the tiny total capacity.
        let p = BufferPool::with_shard_count(Box::new(MemStore::new()), 4, 4);
        assert_eq!(p.num_shards(), 4);
        let ids: Vec<_> = (0..4).map(|_| p.allocate()).collect();
        p.flush_all();
        p.reset_stats();
        for &id in &ids {
            p.read(id, |_| ());
        }
        assert_eq!(p.stats().reads, 4);
        assert_eq!(p.resident(), 4, "one frame per shard, no eviction");
        for &id in &ids {
            p.read(id, |_| ());
        }
        assert_eq!(p.stats().reads, 4, "all warm repeats hit");
    }

    #[test]
    fn residency_probe_reports_without_counting() {
        let p = pool(8);
        let a = p.allocate();
        let b = p.allocate();
        let c = p.allocate();
        p.flush_all();
        p.reset_stats();
        p.read(a, |_| ());
        p.read(b, |_| ());
        let before = p.stats();
        let tl_before = crate::stats::thread_reads();
        assert_eq!(p.residency(&[a, b, c, a]), vec![true, true, false, true]);
        assert_eq!(p.resident_among(&[a, b, c]), 2);
        // The probe is introspection: no global, shard or thread-local
        // counter may move, however many pages it asks about.
        assert_eq!(p.stats(), before, "residency probe counted as access");
        assert_eq!(crate::stats::thread_reads(), tl_before);
        for s in p.shard_stats() {
            assert_eq!(s.retries, 0);
        }
        assert_eq!(
            p.shard_stats()
                .iter()
                .fold(0, |acc, s| acc + s.reads + s.writes),
            before.reads + before.writes
        );
    }

    #[test]
    fn residency_probe_does_not_refresh_lru_order() {
        // Single shard for a defined global eviction order. Warm a then
        // b (a is oldest). A probe of `a` must NOT count as a touch: the
        // next capacity miss still evicts a, not b.
        let p = pool1(2);
        let a = p.allocate();
        let b = p.allocate();
        let c = p.allocate();
        p.flush_all();
        p.reset_stats();
        p.read(a, |_| ());
        p.read(b, |_| ());
        assert_eq!(p.residency(&[a, b, c]), vec![true, true, false]);
        p.read(c, |_| ()); // must evict a (LRU despite the probe)
        assert_eq!(p.residency(&[a, b, c]), vec![false, true, true]);
        p.read(b, |_| ());
        assert_eq!(p.stats().reads, 3, "b stayed resident through it all");
    }

    #[test]
    fn residency_probe_spans_shards() {
        // 4 shards × 1 frame: pages 0..4 land in distinct shards.
        let p = BufferPool::with_shard_count(Box::new(MemStore::new()), 4, 4);
        let ids: Vec<_> = (0..4).map(|_| p.allocate()).collect();
        p.flush_all();
        p.read(ids[1], |_| ());
        p.read(ids[3], |_| ());
        assert_eq!(
            p.residency(&[ids[0], ids[1], ids[2], ids[3]]),
            vec![false, true, false, true]
        );
    }

    #[test]
    fn shard_stats_sum_to_global() {
        let p = pool(64);
        let ids: Vec<_> = (0..40).map(|_| p.allocate()).collect();
        for &id in &ids {
            p.write(id, |b| b[0] = id as u8);
        }
        p.flush_all();
        p.reset_stats();
        for &id in &ids {
            p.read(id, |_| ());
        }
        p.flush_all();
        let global = p.stats();
        let per_shard = p.shard_stats();
        assert_eq!(per_shard.len(), p.num_shards());
        let sum = per_shard
            .iter()
            .fold(StatsSnapshot::default(), |acc, s| StatsSnapshot {
                reads: acc.reads + s.reads,
                writes: acc.writes + s.writes,
                retries: acc.retries + s.retries,
            });
        assert_eq!(sum, global, "shard counters partition the global ones");
        assert!(
            per_shard.iter().filter(|s| s.reads > 0).count() > 1,
            "40 consecutive pages must spread over several shards"
        );
    }

    #[test]
    fn concurrent_readers_fetch_each_page_once() {
        let p = std::sync::Arc::new(pool(256));
        let ids: Vec<_> = (0..64).map(|_| p.allocate()).collect();
        for &id in &ids {
            p.write(id, |b| b[7] = (id % 251) as u8);
        }
        p.flush_all();
        p.reset_stats();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let p = std::sync::Arc::clone(&p);
                let ids = ids.clone();
                s.spawn(move || {
                    for _round in 0..20 {
                        for &id in &ids {
                            let v = p.read(id, |b| b[7]);
                            assert_eq!(v, (id % 251) as u8);
                        }
                    }
                });
            }
        });
        assert_eq!(
            p.stats().reads,
            ids.len() as u64,
            "every page misses exactly once across all threads"
        );
    }

    #[test]
    fn write_counts_on_flush() {
        let p = pool(8);
        let id = p.allocate();
        p.reset_stats();
        p.write(id, |b| b[0] = 9);
        assert_eq!(p.stats().writes, 0, "writes deferred until flush/evict");
        p.flush_all();
        assert_eq!(p.stats().writes, 1);
    }

    #[test]
    fn allocate_is_free_of_read_accesses() {
        let p = pool(8);
        p.reset_stats();
        let id = p.allocate();
        p.write(id, |b| b[0] = 1);
        assert_eq!(p.stats().reads, 0);
    }

    #[test]
    fn unallocated_page_read_is_an_error() {
        let p = pool(8);
        let err = p.try_read(99, |_| ()).unwrap_err();
        assert!(matches!(err, StorageError::OutOfBounds { page: 99, .. }));
        assert_eq!(p.stats().retries, 0, "structural errors are not retried");
    }

    #[test]
    fn flushed_pages_carry_valid_checksums() {
        let store = Box::new(MemStore::new());
        let p = BufferPool::new(store, 8);
        let id = p.allocate();
        p.write(id, |b| b[0] = 0xEE);
        p.flush_all();
        // A fresh pool over the same "disk" must verify and read it back.
        // (MemStore is process-local, so replay through a second read.)
        assert_eq!(p.read(id, |b| b[0]), 0xEE);
    }

    #[test]
    fn allocated_but_unwritten_pages_get_sealed_too() {
        // `allocate` marks the frame dirty, so even an untouched page is
        // checksummed on flush — the store never holds a resident page
        // without a valid trailer.
        let p = pool(2);
        let ids: Vec<_> = (0..6).map(|_| p.allocate()).collect();
        p.flush_all();
        for id in ids {
            p.try_read(id, |_| ()).unwrap();
        }
    }

    #[test]
    fn transient_read_failures_are_retried_and_counted() {
        let store = Box::new(MemStore::new());
        for _ in 0..4 {
            store.allocate().unwrap();
        }
        let inj = FaultInjector::new(store, FaultConfig::new(11).with_read_fail_rate(0.4));
        let counters = inj.counters();
        let p = BufferPool::new(Box::new(inj), 2).with_max_retries(16);
        // Hammer reads through a tiny pool: every miss re-fetches.
        for round in 0..50 {
            for id in 0..4 {
                p.try_read(id, |_| ())
                    .unwrap_or_else(|e| panic!("round {round}: {e}"));
            }
        }
        assert!(
            counters.transient_read_failures() > 0,
            "faults must have fired"
        );
        assert_eq!(
            p.stats().retries,
            counters.transient_read_failures(),
            "every transient failure is exactly one retry"
        );
    }

    #[test]
    fn retry_budget_exhaustion_surfaces_the_error() {
        let store = Box::new(MemStore::new());
        store.allocate().unwrap();
        let inj = FaultInjector::new(store, FaultConfig::new(1).with_read_fail_rate(1.0));
        let p = BufferPool::new(Box::new(inj), 2).with_max_retries(3);
        let err = p.try_read(0, |_| ()).unwrap_err();
        assert!(matches!(err, StorageError::Io(_)));
        assert_eq!(p.stats().retries, 3, "budget spent before giving up");
    }

    #[test]
    fn bit_flips_are_caught_and_healed_by_retry() {
        // A sealed page behind a store that flips one bit on a quarter of
        // the reads: the pool must never return the corrupted bytes.
        let store = Box::new(MemStore::new());
        store.allocate().unwrap();
        let mut sealed = zeroed_page();
        sealed[123] = 45;
        crate::checksum::seal_page(&mut sealed);
        store.write_page(0, &sealed).unwrap();
        let inj = FaultInjector::new(store, FaultConfig::new(8).with_bit_flip_rate(0.25));
        let counters = inj.counters();
        let p = BufferPool::new(Box::new(inj), 1).with_max_retries(8);
        for _ in 0..40 {
            let v = p.try_read(0, |b| b[123]).unwrap();
            assert_eq!(v, 45, "a verified page is never wrong");
            // Force the next read to miss.
            p.try_flush_all().unwrap();
        }
        assert!(counters.bit_flips() > 0, "flips must have fired");
        assert_eq!(
            p.stats().retries,
            counters.bit_flips(),
            "each flip costs one retry"
        );
    }

    #[test]
    fn drop_with_failing_store_does_not_panic() {
        // A store whose writes always fail: flush reports the error, but
        // dropping the pool with dirty pages must stay silent.
        struct WriteBrokenStore;
        impl PageStore for WriteBrokenStore {
            fn read_page(&self, _: PageId, buf: &mut [u8; PAGE_SIZE]) -> StorageResult<()> {
                buf.fill(0);
                Ok(())
            }
            fn write_page(&self, _: PageId, _: &[u8; PAGE_SIZE]) -> StorageResult<()> {
                Err(StorageError::Io(std::io::Error::other("disk gone")))
            }
            fn allocate(&self) -> StorageResult<PageId> {
                Ok(0)
            }
            fn num_pages(&self) -> u32 {
                1
            }
        }
        let p = BufferPool::new(Box::new(WriteBrokenStore), 4);
        let id = p.allocate();
        p.write(id, |b| b[0] = 1);
        assert!(
            p.try_flush_all().is_err(),
            "flush reports the write failure"
        );
        p.write(id, |b| b[0] = 2); // dirty again...
        drop(p); // ...and drop must swallow the error.
    }

    #[test]
    fn pool_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BufferPool>();
        assert_send_sync::<Arc<BufferPool>>();
    }
}

//! CRC32 page checksums.
//!
//! Every page reserves its last four bytes ([`crate::page::CHECKSUM_LEN`])
//! for a little-endian CRC32 (IEEE 802.3 polynomial, the same one zlib
//! uses) over the first [`crate::page::PAGE_DATA`] bytes. The buffer pool
//! seals pages when it writes them back and verifies them on every fetch.
//!
//! One page state is exempt: the **all-zero page**. Freshly allocated
//! pages are zeroed by the store without passing through the pool's write
//! path, so their trailer is zero while `crc32(zeros) != 0`. An all-zero
//! page is therefore accepted as trivially valid. This cannot mask a
//! single-bit flip of a sealed page: a sealed page always carries a
//! nonzero checksum (see `crc_of_zeros_is_nonzero`), so it can never be
//! all-zero, and any single-bit flip of it leaves it non-zero too.

use crate::error::{StorageError, StorageResult};
use crate::page::{codec, PageId, PAGE_DATA, PAGE_SIZE};

/// CRC32 (IEEE, reflected) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    !crc32_update(!0u32, data)
}

/// Slicing-by-8 tables: `TABLES[0]` is the classic byte-at-a-time table;
/// `TABLES[k][b]` advances a byte `b` through `k` further zero bytes, so
/// eight input bytes fold into the state with eight independent lookups.
/// Same polynomial and bit order as before — identical checksums, the
/// mesh-frame seal/verify path just stops being the bottleneck.
fn tables() -> &'static [[u32; 256]; 8] {
    static TABLES: std::sync::OnceLock<[[u32; 256]; 8]> = std::sync::OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        t[0] = std::array::from_fn(|i| {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            c
        });
        for i in 0..256usize {
            let mut c = t[0][i];
            for k in 1..8 {
                c = t[0][(c & 0xFF) as usize] ^ (c >> 8);
                t[k][i] = c;
            }
        }
        t
    })
}

fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    let t = tables();
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ crc;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// Incremental CRC32 (same polynomial) for streamed artifacts.
#[derive(Clone, Copy, Debug)]
pub struct Crc32Hasher(u32);

impl Default for Crc32Hasher {
    fn default() -> Self {
        Crc32Hasher(!0)
    }
}

impl Crc32Hasher {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn update(&mut self, data: &[u8]) {
        self.0 = crc32_update(self.0, data);
    }

    pub fn finalize(self) -> u32 {
        !self.0
    }
}

/// Write the checksum trailer of `buf` (call just before handing the page
/// to the store).
pub fn seal_page(buf: &mut [u8; PAGE_SIZE]) {
    let crc = crc32(&buf[..PAGE_DATA]);
    codec::put_u32(buf, PAGE_DATA, crc);
}

/// Verify the checksum trailer of `buf` as read from the store.
///
/// An all-zero page (never sealed — a fresh allocation) is accepted; see
/// the module docs for why this cannot hide corruption of sealed pages.
pub fn verify_page(page: PageId, buf: &[u8; PAGE_SIZE]) -> StorageResult<()> {
    let stored = codec::get_u32(buf, PAGE_DATA);
    let computed = crc32(&buf[..PAGE_DATA]);
    if stored == computed {
        return Ok(());
    }
    if stored == 0 && buf[..PAGE_DATA].iter().all(|&b| b == 0) {
        return Ok(()); // fresh page, never sealed
    }
    Err(StorageError::corrupt(
        page,
        format!("checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::zeroed_page;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn hasher_matches_one_shot() {
        let data = b"direct mesh stores terrain in pages";
        let mut h = Crc32Hasher::new();
        h.update(&data[..10]);
        h.update(&data[10..]);
        assert_eq!(h.finalize(), crc32(data));
    }

    #[test]
    fn crc_of_zeros_is_nonzero() {
        // Load-bearing for the fresh-page exemption: a sealed page can
        // never be all-zero because its trailer would be this value.
        assert_ne!(crc32(&[0u8; PAGE_DATA]), 0);
    }

    #[test]
    fn seal_verify_roundtrip() {
        let mut p = zeroed_page();
        p[100] = 0xAB;
        seal_page(&mut p);
        verify_page(7, &p).unwrap();
    }

    #[test]
    fn fresh_zero_page_is_valid() {
        let p = zeroed_page();
        verify_page(0, &p).unwrap();
    }

    #[test]
    fn any_tampering_is_detected() {
        let mut p = zeroed_page();
        p[9] = 3;
        seal_page(&mut p);
        p[5000] ^= 0x10;
        let err = verify_page(4, &p).unwrap_err();
        assert!(
            matches!(err, StorageError::Corrupt { page: 4, .. }),
            "{err}"
        );
    }

    #[test]
    fn trailer_tampering_is_detected() {
        let mut p = zeroed_page();
        p[0] = 1;
        seal_page(&mut p);
        p[PAGE_SIZE - 1] ^= 0x80;
        assert!(verify_page(1, &p).is_err());
    }
}

//! Typed errors for the storage stack.
//!
//! Every fallible page operation reports a [`StorageError`]; the buffer
//! pool's retry logic consults [`StorageError::is_retryable`] to decide
//! whether a failed read is worth re-issuing (transient I/O hiccups and
//! checksum mismatches — a re-read may hit a clean copy) or hopeless
//! (structural problems like out-of-bounds page ids).

use std::fmt;
use std::io;

use crate::page::PageId;

/// Result alias used throughout the storage crates.
pub type StorageResult<T> = Result<T, StorageError>;

/// What went wrong in the page store / buffer pool stack.
#[derive(Debug)]
pub enum StorageError {
    /// An operating-system I/O failure (open, seek, read, write, sync).
    Io(io::Error),
    /// A page failed integrity verification (checksum mismatch or an
    /// internally inconsistent layout).
    Corrupt {
        /// The offending page, or [`crate::page::NO_PAGE`] when the
        /// corruption is not tied to one page (e.g. a stream file).
        page: PageId,
        detail: String,
    },
    /// A page id outside the allocated range of the store.
    OutOfBounds { page: PageId, num_pages: u32 },
    /// The backing file ended before a full page could be read.
    ShortFile { page: PageId },
    /// A persisted artifact has a bad magic number / unsupported version.
    Format { detail: String },
    /// A record larger than any page can hold.
    RecordTooLarge { len: usize, max: usize },
}

impl StorageError {
    /// Whether retrying the *same* operation can plausibly succeed.
    ///
    /// Transient OS errors (interrupts, timeouts) and corruption (the next
    /// read may return a clean copy when the fault was on the wire rather
    /// than on the platter) are retryable; structural errors are not.
    pub fn is_retryable(&self) -> bool {
        match self {
            StorageError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            ),
            StorageError::Corrupt { .. } => true,
            StorageError::OutOfBounds { .. }
            | StorageError::ShortFile { .. }
            | StorageError::Format { .. }
            | StorageError::RecordTooLarge { .. } => false,
        }
    }

    /// Shorthand for a corrupt-page error.
    pub fn corrupt(page: PageId, detail: impl Into<String>) -> Self {
        StorageError::Corrupt {
            page,
            detail: detail.into(),
        }
    }

    /// Shorthand for a format error on a persisted artifact.
    pub fn format(detail: impl Into<String>) -> Self {
        StorageError::Format {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::Corrupt { page, detail } => {
                write!(f, "page {page} corrupt: {detail}")
            }
            StorageError::OutOfBounds { page, num_pages } => {
                write!(f, "page {page} out of bounds (store has {num_pages} pages)")
            }
            StorageError::ShortFile { page } => {
                write!(f, "store file too short to hold page {page}")
            }
            StorageError::Format { detail } => write!(f, "format error: {detail}"),
            StorageError::RecordTooLarge { len, max } => {
                write!(f, "record of {len} bytes exceeds page capacity {max}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Lossy conversion for callers that still speak `io::Error` (the CLI).
impl From<StorageError> for io::Error {
    fn from(e: StorageError) -> Self {
        match e {
            StorageError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_classification() {
        assert!(StorageError::Io(io::Error::from(io::ErrorKind::Interrupted)).is_retryable());
        assert!(StorageError::corrupt(3, "bad checksum").is_retryable());
        assert!(!StorageError::Io(io::Error::from(io::ErrorKind::NotFound)).is_retryable());
        assert!(!StorageError::OutOfBounds {
            page: 9,
            num_pages: 2
        }
        .is_retryable());
        assert!(!StorageError::ShortFile { page: 1 }.is_retryable());
        assert!(!StorageError::format("bad magic").is_retryable());
        assert!(!StorageError::RecordTooLarge {
            len: 9000,
            max: 8180
        }
        .is_retryable());
    }

    #[test]
    fn display_mentions_the_page() {
        let e = StorageError::corrupt(17, "checksum mismatch");
        assert!(e.to_string().contains("17"));
        let e = StorageError::OutOfBounds {
            page: 4,
            num_pages: 2,
        };
        assert!(e.to_string().contains("4") && e.to_string().contains("2"));
    }

    #[test]
    fn io_roundtrip_preserves_kind() {
        let e = StorageError::from(io::Error::from(io::ErrorKind::PermissionDenied));
        let back: io::Error = e.into();
        assert_eq!(back.kind(), io::ErrorKind::PermissionDenied);
    }
}

//! Deterministic fault injection for the page-store layer.
//!
//! [`FaultInjector`] wraps any [`PageStore`] and perturbs its operations
//! according to a seeded [`FaultConfig`]: transient read failures, a hard
//! fail-after-N switch, single-bit flips on read, and torn writes. Every
//! decision is a pure function of the seed and a per-operation counter,
//! so a given (config, workload) pair always injects the same faults —
//! tests can assert exact retry counts.
//!
//! The injector sits *below* the buffer pool, standing in for a flaky
//! disk: the pool's retry loop and checksum verification are exactly the
//! defenses under test.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{StorageError, StorageResult};
use crate::page::{PageId, PAGE_SIZE};
use crate::store::PageStore;

/// What to inject. All probabilities are in `[0, 1]`.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultConfig {
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// Probability that a read fails with a transient (retryable) I/O
    /// error before touching the underlying store.
    pub read_fail_rate: f64,
    /// Probability that a read succeeds but one bit of the returned page
    /// is flipped (caught by the checksum layer as `Corrupt`).
    pub bit_flip_rate: f64,
    /// Probability that a write persists only the first half of the page
    /// while reporting success (a torn write; caught by the checksum on a
    /// later read).
    pub torn_write_rate: f64,
    /// After this many successful reads, every further read fails with a
    /// non-retryable error (`None` disables). Models a device dropping
    /// dead mid-query.
    pub fail_reads_after: Option<u64>,
    /// Kill switch for crash injection: the N-th durable write (pages,
    /// WAL appends and root-slot writes all count) persists only a
    /// deterministic prefix of its bytes and fails hard; every later
    /// write or sync fails hard too (`None` disables). Models the process
    /// dying at an arbitrary byte offset of an arbitrary write.
    pub fail_writes_after: Option<u64>,
}

impl FaultConfig {
    pub fn new(seed: u64) -> Self {
        FaultConfig {
            seed,
            ..Default::default()
        }
    }

    pub fn with_read_fail_rate(mut self, rate: f64) -> Self {
        self.read_fail_rate = rate;
        self
    }

    pub fn with_bit_flip_rate(mut self, rate: f64) -> Self {
        self.bit_flip_rate = rate;
        self
    }

    pub fn with_torn_write_rate(mut self, rate: f64) -> Self {
        self.torn_write_rate = rate;
        self
    }

    pub fn with_fail_reads_after(mut self, n: u64) -> Self {
        self.fail_reads_after = Some(n);
        self
    }

    pub fn with_fail_writes_after(mut self, n: u64) -> Self {
        self.fail_writes_after = Some(n);
        self
    }
}

/// Verdict of the [`KillSwitch`] for one durable write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteVerdict {
    /// Persist the whole buffer and report success.
    Full,
    /// The crash point: persist only the first `n` bytes (possibly zero,
    /// possibly all of them — a crash right after the write is also a
    /// crash), then fail hard.
    Torn(usize),
    /// The process is already dead: persist nothing, fail hard.
    Dead,
}

/// A shared kill-after-N-writes switch coordinating crash injection
/// across every durable-write path of a store: page writes through the
/// [`FaultInjector`], WAL appends and root-slot commits all draw their
/// verdict from one monotone counter, so "crash at the N-th write" means
/// the N-th write *anywhere*, not the N-th page write.
///
/// The torn prefix length of the killing write is a pure function of the
/// seed and the counter, so a given (seed, N, workload) triple always
/// crashes at the same byte offset — crash-recovery tests are replayable.
#[derive(Debug)]
pub struct KillSwitch {
    seed: u64,
    kill_after: u64,
    ops: AtomicU64,
}

impl KillSwitch {
    pub fn new(seed: u64, kill_after: u64) -> Arc<Self> {
        Arc::new(KillSwitch {
            seed,
            kill_after,
            ops: AtomicU64::new(0),
        })
    }

    /// Draw the verdict for a durable write of `len` bytes, consuming one
    /// unit of the write budget.
    pub fn verdict(&self, len: usize) -> WriteVerdict {
        let op = self.ops.fetch_add(1, Ordering::SeqCst);
        match op.cmp(&self.kill_after) {
            std::cmp::Ordering::Less => WriteVerdict::Full,
            std::cmp::Ordering::Equal => {
                let k = (mix(self.seed ^ 0xC7A5_4B17, op) % (len as u64 + 1)) as usize;
                WriteVerdict::Torn(k)
            }
            std::cmp::Ordering::Greater => WriteVerdict::Dead,
        }
    }

    /// Whether the crash point has been reached (syncs and opens must
    /// fail from here on).
    pub fn is_dead(&self) -> bool {
        self.ops.load(Ordering::SeqCst) > self.kill_after
    }

    /// The hard, non-retryable error every post-crash operation reports.
    pub fn dead_error(&self) -> StorageError {
        StorageError::Io(std::io::Error::other(format!(
            "injected crash: process killed after {} durable writes",
            self.kill_after
        )))
    }
}

/// Counters of what was actually injected, shared with the test through
/// an [`Arc`] handle taken before the injector is boxed into a pool.
#[derive(Debug, Default)]
pub struct FaultCounters {
    reads: AtomicU64,
    writes: AtomicU64,
    transient_read_failures: AtomicU64,
    bit_flips: AtomicU64,
    torn_writes: AtomicU64,
    hard_failures: AtomicU64,
}

impl FaultCounters {
    /// Reads that reached the injector (including failed ones).
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Injected transient read failures.
    pub fn transient_read_failures(&self) -> u64 {
        self.transient_read_failures.load(Ordering::Relaxed)
    }

    /// Injected single-bit flips.
    pub fn bit_flips(&self) -> u64 {
        self.bit_flips.load(Ordering::Relaxed)
    }

    /// Injected torn writes.
    pub fn torn_writes(&self) -> u64 {
        self.torn_writes.load(Ordering::Relaxed)
    }

    /// Reads rejected by the fail-after-N switch.
    pub fn hard_failures(&self) -> u64 {
        self.hard_failures.load(Ordering::Relaxed)
    }

    /// All injected faults of any kind.
    pub fn total_injected(&self) -> u64 {
        self.transient_read_failures()
            + self.bit_flips()
            + self.torn_writes()
            + self.hard_failures()
    }
}

/// A [`PageStore`] decorator injecting faults per [`FaultConfig`].
pub struct FaultInjector {
    inner: Box<dyn PageStore>,
    config: FaultConfig,
    counters: Arc<FaultCounters>,
    /// Monotone operation counter; with the seed it fully determines the
    /// fault stream.
    ops: AtomicU64,
    /// Crash switch, present iff `fail_writes_after` is configured.
    kill: Option<Arc<KillSwitch>>,
}

impl FaultInjector {
    pub fn new(inner: Box<dyn PageStore>, config: FaultConfig) -> Self {
        let kill = config
            .fail_writes_after
            .map(|n| KillSwitch::new(config.seed, n));
        FaultInjector {
            inner,
            config,
            counters: Arc::new(FaultCounters::default()),
            ops: AtomicU64::new(0),
            kill,
        }
    }

    /// Handle to the injection counters (clone before boxing the injector
    /// into a buffer pool).
    pub fn counters(&self) -> Arc<FaultCounters> {
        Arc::clone(&self.counters)
    }

    /// Handle to the crash switch (for WAL and root-file writers that
    /// must share the same write budget), if one is configured.
    pub fn kill_switch(&self) -> Option<Arc<KillSwitch>> {
        self.kill.clone()
    }

    /// Draw a deterministic uniform value in `[0, 1)` for this operation.
    fn draw(&self, salt: u64) -> f64 {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        let x = mix(self.config.seed ^ salt, op);
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Deterministic bit position within a page for this operation.
    fn draw_bit(&self) -> usize {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        (mix(self.config.seed ^ 0xB17_F11B, op) % (PAGE_SIZE as u64 * 8)) as usize
    }
}

/// SplitMix64-style stateless mixer.
fn mix(seed: u64, op: u64) -> u64 {
    let mut z = seed ^ op.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl PageStore for FaultInjector {
    fn read_page(&self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> StorageResult<()> {
        let n = self.counters.reads.fetch_add(1, Ordering::Relaxed);
        if let Some(limit) = self.config.fail_reads_after {
            if n >= limit {
                self.counters.hard_failures.fetch_add(1, Ordering::Relaxed);
                return Err(StorageError::Io(std::io::Error::other(format!(
                    "injected hard failure: device dead after {limit} reads"
                ))));
            }
        }
        if self.config.read_fail_rate > 0.0 && self.draw(0x7EAD) < self.config.read_fail_rate {
            self.counters
                .transient_read_failures
                .fetch_add(1, Ordering::Relaxed);
            return Err(StorageError::Io(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "injected transient read failure",
            )));
        }
        self.inner.read_page(id, buf)?;
        if self.config.bit_flip_rate > 0.0 && self.draw(0xF11B) < self.config.bit_flip_rate {
            let bit = self.draw_bit();
            buf[bit / 8] ^= 1 << (bit % 8);
            self.counters.bit_flips.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &[u8; PAGE_SIZE]) -> StorageResult<()> {
        self.counters.writes.fetch_add(1, Ordering::Relaxed);
        if let Some(ks) = &self.kill {
            match ks.verdict(PAGE_SIZE) {
                WriteVerdict::Full => {}
                WriteVerdict::Torn(k) => {
                    // Persist the first `k` bytes over the old content,
                    // then die: the crash landed mid-write.
                    let mut current = crate::page::zeroed_page();
                    let _ = self.inner.read_page(id, &mut current);
                    current[..k].copy_from_slice(&buf[..k]);
                    let _ = self.inner.write_page(id, &current);
                    self.counters.torn_writes.fetch_add(1, Ordering::Relaxed);
                    self.counters.hard_failures.fetch_add(1, Ordering::Relaxed);
                    return Err(ks.dead_error());
                }
                WriteVerdict::Dead => {
                    self.counters.hard_failures.fetch_add(1, Ordering::Relaxed);
                    return Err(ks.dead_error());
                }
            }
        }
        if self.config.torn_write_rate > 0.0 && self.draw(0x7093) < self.config.torn_write_rate {
            // Persist only the first half over whatever is on disk, then
            // report success — the lie a torn sector write tells.
            let mut current = crate::page::zeroed_page();
            // Best effort: if the old page is unreadable, tear onto zeros.
            let _ = self.inner.read_page(id, &mut current);
            current[..PAGE_SIZE / 2].copy_from_slice(&buf[..PAGE_SIZE / 2]);
            self.inner.write_page(id, &current)?;
            self.counters.torn_writes.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        self.inner.write_page(id, buf)
    }

    fn allocate(&self) -> StorageResult<PageId> {
        if let Some(ks) = &self.kill {
            if ks.is_dead() {
                self.counters.hard_failures.fetch_add(1, Ordering::Relaxed);
                return Err(ks.dead_error());
            }
        }
        self.inner.allocate()
    }

    fn num_pages(&self) -> u32 {
        self.inner.num_pages()
    }

    fn sync(&self) -> StorageResult<()> {
        if let Some(ks) = &self.kill {
            if ks.is_dead() {
                self.counters.hard_failures.fetch_add(1, Ordering::Relaxed);
                return Err(ks.dead_error());
            }
        }
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::zeroed_page;
    use crate::store::MemStore;

    fn store_with_pages(n: u32) -> Box<MemStore> {
        let s = Box::new(MemStore::new());
        for _ in 0..n {
            s.allocate().unwrap();
        }
        s
    }

    #[test]
    fn clean_config_injects_nothing() {
        let inj = FaultInjector::new(store_with_pages(4), FaultConfig::new(1));
        let counters = inj.counters();
        let mut buf = zeroed_page();
        for id in 0..4 {
            inj.read_page(id, &mut buf).unwrap();
            inj.write_page(id, &buf).unwrap();
        }
        assert_eq!(counters.total_injected(), 0);
        assert_eq!(counters.reads(), 4);
        assert_eq!(counters.writes(), 4);
    }

    #[test]
    fn fault_stream_is_deterministic() {
        let run = || {
            let inj = FaultInjector::new(
                store_with_pages(1),
                FaultConfig::new(99).with_read_fail_rate(0.3),
            );
            let counters = inj.counters();
            let mut buf = zeroed_page();
            let outcomes: Vec<bool> = (0..200)
                .map(|_| inj.read_page(0, &mut buf).is_ok())
                .collect();
            (outcomes, counters.transient_read_failures())
        };
        let (a, fa) = run();
        let (b, fb) = run();
        assert_eq!(a, b, "same seed must give the same fault stream");
        assert_eq!(fa, fb);
        assert!(
            fa > 20 && fa < 100,
            "~30% of 200 reads should fail, got {fa}"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let outcomes = |seed| {
            let inj = FaultInjector::new(
                store_with_pages(1),
                FaultConfig::new(seed).with_read_fail_rate(0.5),
            );
            let mut buf = zeroed_page();
            (0..64)
                .map(|_| inj.read_page(0, &mut buf).is_ok())
                .collect::<Vec<_>>()
        };
        assert_ne!(outcomes(1), outcomes(2));
    }

    #[test]
    fn transient_failures_are_retryable() {
        let inj = FaultInjector::new(
            store_with_pages(1),
            FaultConfig::new(7).with_read_fail_rate(1.0),
        );
        let mut buf = zeroed_page();
        let err = inj.read_page(0, &mut buf).unwrap_err();
        assert!(
            err.is_retryable(),
            "injected transient failure must be retryable"
        );
    }

    #[test]
    fn fail_after_n_is_hard() {
        let inj = FaultInjector::new(
            store_with_pages(1),
            FaultConfig::new(7).with_fail_reads_after(3),
        );
        let counters = inj.counters();
        let mut buf = zeroed_page();
        for _ in 0..3 {
            inj.read_page(0, &mut buf).unwrap();
        }
        let err = inj.read_page(0, &mut buf).unwrap_err();
        assert!(!err.is_retryable(), "dead device must not be retried");
        assert!(inj.read_page(0, &mut buf).is_err(), "stays dead");
        assert_eq!(counters.hard_failures(), 2);
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let store = store_with_pages(1);
        let mut sealed = zeroed_page();
        sealed[17] = 0x5A;
        store.write_page(0, &sealed).unwrap();
        let inj = FaultInjector::new(store, FaultConfig::new(3).with_bit_flip_rate(1.0));
        let counters = inj.counters();
        let mut buf = zeroed_page();
        inj.read_page(0, &mut buf).unwrap();
        let differing_bits: u32 = sealed
            .iter()
            .zip(buf.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(differing_bits, 1);
        assert_eq!(counters.bit_flips(), 1);
    }

    #[test]
    fn kill_switch_tears_the_nth_write_and_stays_dead() {
        let store = store_with_pages(2);
        let mut old = zeroed_page();
        old.fill(0x11);
        store.write_page(0, &old).unwrap();
        store.write_page(1, &old).unwrap();
        let inj = FaultInjector::new(store, FaultConfig::new(42).with_fail_writes_after(1));
        let counters = inj.counters();
        let ks = inj.kill_switch().expect("switch configured");
        assert!(!ks.is_dead());

        let mut new = zeroed_page();
        new.fill(0x22);
        inj.write_page(0, &new).unwrap(); // write 0: survives
        let err = inj.write_page(1, &new).unwrap_err(); // write 1: crash
        assert!(!err.is_retryable(), "a crash is not retryable");
        assert!(ks.is_dead());

        // The torn page holds a prefix of the new content over the old.
        let mut on_disk = zeroed_page();
        inj.read_page(1, &mut on_disk).unwrap();
        let k = on_disk.iter().take_while(|&&b| b == 0x22).count();
        assert!(on_disk[k..].iter().all(|&b| b == 0x11), "prefix then old");

        // Everything durable after the crash point fails hard.
        assert!(inj.write_page(0, &new).is_err());
        assert!(inj.allocate().is_err());
        assert!(inj.sync().is_err());
        assert!(counters.hard_failures() >= 3);
    }

    #[test]
    fn kill_switch_torn_offset_is_deterministic() {
        let run = || {
            let ks = KillSwitch::new(7, 2);
            assert_eq!(ks.verdict(100), WriteVerdict::Full);
            assert_eq!(ks.verdict(100), WriteVerdict::Full);
            let v = ks.verdict(100);
            assert_eq!(ks.verdict(100), WriteVerdict::Dead);
            v
        };
        let a = run();
        let b = run();
        assert!(matches!(a, WriteVerdict::Torn(k) if k <= 100));
        assert_eq!(a, b, "same seed and budget must tear at the same byte");
    }

    #[test]
    fn torn_write_keeps_first_half_only() {
        let store = store_with_pages(1);
        let mut old = zeroed_page();
        old.fill(0x11);
        store.write_page(0, &old).unwrap();
        let inj = FaultInjector::new(store, FaultConfig::new(5).with_torn_write_rate(1.0));
        let counters = inj.counters();
        let mut new = zeroed_page();
        new.fill(0x22);
        inj.write_page(0, &new).unwrap(); // reports success!
        let mut on_disk = zeroed_page();
        inj.read_page(0, &mut on_disk).unwrap();
        assert!(on_disk[..PAGE_SIZE / 2].iter().all(|&b| b == 0x22));
        assert!(on_disk[PAGE_SIZE / 2..].iter().all(|&b| b == 0x11));
        assert_eq!(counters.torn_writes(), 1);
    }
}

//! Slotted heap files with variable-length records.
//!
//! Page layout:
//!
//! ```text
//! [n_slots: u16][free_off: u16]  header (4 bytes)
//! [(rec_off: u16, rec_len: u16)] * n_slots  slot directory, grows up
//! ...free space...
//! records, grow down from the end of the page
//! ```
//!
//! Records are immutable once inserted (terrain datasets are write-once,
//! read-many). Insertion order is therefore the clustering order: callers
//! sort records by Hilbert key before loading so that spatially close
//! points share pages.
//!
//! All offsets stay below [`PAGE_DATA`]: the buffer pool owns the last
//! four bytes of every page for its CRC32 trailer.

use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::page::{codec, PageId, PAGE_DATA};

const HEADER: usize = 4;
const SLOT: usize = 4;

/// Address of a record: page + slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    pub page: PageId,
    pub slot: u16,
}

impl RecordId {
    /// Pack into a `u64` (for storage inside B+-tree values / index leaves).
    #[inline]
    pub fn to_u64(self) -> u64 {
        ((self.page as u64) << 16) | self.slot as u64
    }

    #[inline]
    pub fn from_u64(v: u64) -> Self {
        RecordId {
            page: (v >> 16) as PageId,
            slot: (v & 0xFFFF) as u16,
        }
    }
}

/// A heap file: an append-only bag of records spread over pages.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    /// All pages of this file, in allocation order. Kept in memory as the
    /// file "catalog" (a production system would chain pages; the list is
    /// reconstructible and never consulted during measured queries, which
    /// reach records only through indexes).
    pages: Vec<PageId>,
    len: u64,
}

impl HeapFile {
    /// Largest record that fits on an empty page (the checksum trailer
    /// is outside the usable area).
    pub const MAX_RECORD: usize = PAGE_DATA - HEADER - SLOT;

    pub fn create(pool: Arc<BufferPool>) -> Self {
        HeapFile {
            pool,
            pages: Vec::new(),
            len: 0,
        }
    }

    /// Reattach to an existing file (catalog reload).
    pub fn from_parts(pool: Arc<BufferPool>, pages: Vec<PageId>, len: u64) -> Self {
        HeapFile { pool, pages, len }
    }

    /// Number of records inserted.
    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages the file occupies.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Append a record, returning its address.
    ///
    /// A record never spans pages; if it does not fit in the free space of
    /// the last page a new page is allocated. Oversized records are
    /// rejected up front with [`StorageError::RecordTooLarge`] — nothing
    /// is allocated or written for them.
    pub fn try_insert(&mut self, record: &[u8]) -> StorageResult<RecordId> {
        if record.len() > Self::MAX_RECORD {
            return Err(StorageError::RecordTooLarge {
                len: record.len(),
                max: Self::MAX_RECORD,
            });
        }
        if let Some(&last) = self.pages.last() {
            if let Some(rid) = self.try_insert_into(last, record)? {
                self.len += 1;
                return Ok(rid);
            }
        }
        let page = self.pool.try_allocate()?;
        self.pages.push(page);
        let rid = self
            .try_insert_into(page, record)?
            .expect("record fits empty page");
        self.len += 1;
        Ok(rid)
    }

    /// Infallible [`Self::try_insert`] for build paths; panics on
    /// oversized records and storage errors.
    pub fn insert(&mut self, record: &[u8]) -> RecordId {
        self.try_insert(record).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Whether a record of `len` bytes would land on the current last
    /// page (mirrors [`Self::try_insert`]'s placement decision exactly).
    /// Page-aware codecs use this to decide between delta-encoding a
    /// record against the page's base and opening a fresh page.
    pub fn fits_in_last_page(&self, len: usize) -> StorageResult<bool> {
        let Some(&last) = self.pages.last() else {
            return Ok(false);
        };
        self.pool.try_read(last, |buf| {
            let n_slots = codec::get_u16(buf, 0) as usize;
            let free_off = {
                let f = codec::get_u16(buf, 2) as usize;
                if f == 0 {
                    PAGE_DATA
                } else {
                    f
                }
            };
            free_off >= HEADER + (n_slots + 1) * SLOT + len
        })
    }

    /// Append a record onto a *freshly allocated* page, even when it
    /// would fit on the current last one. The returned id always has
    /// slot 0 — the slot page-aware codecs reserve for base records.
    pub fn try_insert_new_page(&mut self, record: &[u8]) -> StorageResult<RecordId> {
        if record.len() > Self::MAX_RECORD {
            return Err(StorageError::RecordTooLarge {
                len: record.len(),
                max: Self::MAX_RECORD,
            });
        }
        let page = self.pool.try_allocate()?;
        self.pages.push(page);
        let rid = self
            .try_insert_into(page, record)?
            .expect("record fits empty page");
        self.len += 1;
        Ok(rid)
    }

    fn try_insert_into(&self, page: PageId, record: &[u8]) -> StorageResult<Option<RecordId>> {
        self.pool.try_write(page, |buf| {
            let n_slots = codec::get_u16(buf, 0) as usize;
            let free_off = {
                let f = codec::get_u16(buf, 2) as usize;
                if f == 0 {
                    PAGE_DATA // fresh page: records start at the trailer
                } else {
                    f
                }
            };
            let dir_end = HEADER + (n_slots + 1) * SLOT;
            if free_off < dir_end + record.len() {
                return None; // does not fit
            }
            let rec_off = free_off - record.len();
            buf[rec_off..free_off].copy_from_slice(record);
            let slot_off = HEADER + n_slots * SLOT;
            codec::put_u16(buf, slot_off, rec_off as u16);
            codec::put_u16(buf, slot_off + 2, record.len() as u16);
            codec::put_u16(buf, 0, (n_slots + 1) as u16);
            codec::put_u16(buf, 2, rec_off as u16);
            Some(RecordId {
                page,
                slot: n_slots as u16,
            })
        })
    }

    /// Fetch a record by address.
    pub fn try_get(&self, rid: RecordId) -> StorageResult<Vec<u8>> {
        self.try_view_page(rid.page, |view| Ok(view.record(rid.slot)?.to_vec()))
    }

    /// Run `f` against a borrowed [`PageView`] of one page — a single
    /// counted page access however many slots `f` reads. Codecs whose
    /// records reference a sibling slot (the compact codec's page base)
    /// decode point lookups through this.
    pub fn try_view_page<R>(
        &self,
        page: PageId,
        f: impl FnOnce(&PageView<'_>) -> StorageResult<R>,
    ) -> StorageResult<R> {
        self.pool.try_read(page, |buf| f(&PageView { page, buf }))?
    }

    /// Infallible [`Self::try_get`]; panics on storage errors.
    pub fn get(&self, rid: RecordId) -> Vec<u8> {
        self.try_get(rid).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run `f` over every record in the page with id `page` (used by index
    /// scans that fetch whole pages).
    pub fn try_for_each_in_page(
        &self,
        page: PageId,
        mut f: impl FnMut(RecordId, &[u8]),
    ) -> StorageResult<()> {
        self.try_view_page(page, |view| {
            for slot in 0..view.n_slots() {
                f(RecordId { page, slot }, view.record(slot)?);
            }
            Ok(())
        })
    }

    /// Infallible [`Self::try_for_each_in_page`]; panics on storage errors.
    pub fn for_each_in_page(&self, page: PageId, f: impl FnMut(RecordId, &[u8])) {
        self.try_for_each_in_page(page, f)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Iterate every record in file order (page by page).
    pub fn try_scan(&self, mut f: impl FnMut(RecordId, &[u8])) -> StorageResult<()> {
        for &page in &self.pages {
            self.try_for_each_in_page(page, &mut f)?;
        }
        Ok(())
    }

    /// Infallible [`Self::try_scan`]; panics on storage errors.
    pub fn scan(&self, f: impl FnMut(RecordId, &[u8])) {
        self.try_scan(f).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The page ids of this file in order.
    pub fn page_ids(&self) -> &[PageId] {
        &self.pages
    }
}

/// A borrowed view of one heap page's slot directory (see
/// [`HeapFile::try_view_page`]).
pub struct PageView<'a> {
    page: PageId,
    buf: &'a [u8],
}

impl PageView<'_> {
    /// Number of records on the page.
    pub fn n_slots(&self) -> u16 {
        codec::get_u16(self.buf, 0)
    }

    /// The bytes of the record in `slot`.
    pub fn record(&self, slot: u16) -> StorageResult<&[u8]> {
        let n_slots = self.n_slots();
        if slot >= n_slots {
            return Err(StorageError::corrupt(
                self.page,
                format!("slot {slot} out of range ({n_slots})"),
            ));
        }
        let slot_off = HEADER + slot as usize * SLOT;
        let rec_off = codec::get_u16(self.buf, slot_off) as usize;
        let rec_len = codec::get_u16(self.buf, slot_off + 2) as usize;
        if rec_off + rec_len > PAGE_DATA {
            return Err(StorageError::corrupt(
                self.page,
                format!("slot {slot} points past the page payload"),
            ));
        }
        Ok(&self.buf[rec_off..rec_off + rec_len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn heap() -> HeapFile {
        HeapFile::create(Arc::new(BufferPool::new(Box::new(MemStore::new()), 64)))
    }

    #[test]
    fn record_id_packing() {
        let rid = RecordId {
            page: 0xABCDEF,
            slot: 0x1234,
        };
        assert_eq!(RecordId::from_u64(rid.to_u64()), rid);
    }

    #[test]
    fn insert_and_get() {
        let mut h = heap();
        let a = h.insert(b"hello");
        let b = h.insert(b"direct mesh");
        assert_eq!(h.get(a), b"hello");
        assert_eq!(h.get(b), b"direct mesh");
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn records_spill_to_new_pages() {
        let mut h = heap();
        let rec = vec![0x5Au8; 1000];
        let ids: Vec<_> = (0..50).map(|_| h.insert(&rec)).collect();
        assert!(h.num_pages() > 1, "1000-byte records must span pages");
        // 8 records of 1004 bytes (with slot) fit per page.
        assert!(h.num_pages() <= 8);
        for id in ids {
            assert_eq!(h.get(id).len(), 1000);
        }
    }

    #[test]
    fn variable_lengths_roundtrip() {
        let mut h = heap();
        let recs: Vec<Vec<u8>> = (0..200).map(|i| vec![i as u8; (i * 7) % 300 + 1]).collect();
        let ids: Vec<_> = recs.iter().map(|r| h.insert(r)).collect();
        for (rid, rec) in ids.iter().zip(&recs) {
            assert_eq!(&h.get(*rid), rec);
        }
    }

    #[test]
    fn empty_record_is_legal() {
        let mut h = heap();
        let rid = h.insert(b"");
        assert_eq!(h.get(rid), b"");
    }

    #[test]
    fn max_record_fills_page() {
        let mut h = heap();
        let rec = vec![1u8; HeapFile::MAX_RECORD];
        let rid = h.insert(&rec);
        assert_eq!(h.get(rid), rec);
        assert_eq!(h.num_pages(), 1);
        h.insert(b"x");
        assert_eq!(h.num_pages(), 2, "full page forces allocation");
    }

    #[test]
    #[should_panic(expected = "exceeds page capacity")]
    fn oversized_record_panics() {
        let mut h = heap();
        h.insert(&vec![0u8; HeapFile::MAX_RECORD + 1]);
    }

    #[test]
    fn oversized_record_is_a_typed_error_and_allocates_nothing() {
        let mut h = heap();
        let err = h
            .try_insert(&vec![0u8; HeapFile::MAX_RECORD + 1])
            .unwrap_err();
        assert!(matches!(
            err,
            StorageError::RecordTooLarge { len, max }
                if len == HeapFile::MAX_RECORD + 1 && max == HeapFile::MAX_RECORD
        ));
        assert_eq!(h.len(), 0);
        assert_eq!(h.num_pages(), 0, "rejected record must not allocate a page");
        // The file still works afterwards.
        let rid = h.try_insert(b"ok").unwrap();
        assert_eq!(h.get(rid), b"ok");
    }

    #[test]
    fn scan_visits_all_in_order() {
        let mut h = heap();
        for i in 0u32..500 {
            h.insert(&i.to_le_bytes());
        }
        let mut seen = Vec::new();
        h.scan(|_, rec| seen.push(u32::from_le_bytes(rec.try_into().unwrap())));
        assert_eq!(seen, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_in_page_counts_one_access() {
        let mut h = heap();
        for i in 0u32..100 {
            h.insert(&i.to_le_bytes());
        }
        let pool = Arc::clone(&h.pool);
        pool.flush_all();
        pool.reset_stats();
        h.for_each_in_page(h.page_ids()[0], |_, _| {});
        assert_eq!(pool.stats().reads, 1, "page scan = one disk access");
    }

    #[test]
    fn fits_in_last_page_mirrors_insert_placement() {
        let mut h = heap();
        assert!(!h.fits_in_last_page(1).unwrap(), "no pages yet");
        let rec = vec![0x5Au8; 1000];
        h.insert(&rec);
        // Placement prediction must agree with the actual insert for a
        // range of sizes straddling the remaining free space.
        for len in [1usize, 500, 1000, 4000, 7000, HeapFile::MAX_RECORD] {
            let predicted = h.fits_in_last_page(len).unwrap();
            let pages_before = h.num_pages();
            let rid = h.insert(&vec![1u8; len]);
            assert_eq!(
                predicted,
                h.num_pages() == pages_before,
                "prediction wrong for len {len} (rid {rid:?})"
            );
        }
    }

    #[test]
    fn insert_new_page_forces_allocation_at_slot_zero() {
        let mut h = heap();
        h.insert(b"tiny");
        let rid = h.try_insert_new_page(b"base").unwrap();
        assert_eq!(rid.slot, 0);
        assert_eq!(h.num_pages(), 2, "fresh page despite ample free space");
        assert_eq!(h.get(rid), b"base");
        // Oversized records are still rejected without allocating.
        let err = h
            .try_insert_new_page(&vec![0u8; HeapFile::MAX_RECORD + 1])
            .unwrap_err();
        assert!(matches!(err, StorageError::RecordTooLarge { .. }));
        assert_eq!(h.num_pages(), 2);
    }

    #[test]
    fn page_view_reads_multiple_slots_in_one_access() {
        let mut h = heap();
        let a = h.insert(b"base record");
        let b = h.insert(b"delta");
        assert_eq!(a.page, b.page);
        let pool = Arc::clone(&h.pool);
        pool.flush_all();
        pool.reset_stats();
        h.try_view_page(a.page, |view| {
            assert_eq!(view.n_slots(), 2);
            assert_eq!(view.record(0)?, b"base record");
            assert_eq!(view.record(1)?, b"delta");
            assert!(view.record(2).is_err(), "out-of-range slot is typed");
            Ok(())
        })
        .unwrap();
        assert_eq!(pool.stats().reads, 1, "both slots from one disk access");
    }

    #[test]
    fn data_survives_flush() {
        let mut h = heap();
        let ids: Vec<_> = (0u32..300).map(|i| h.insert(&i.to_le_bytes())).collect();
        h.pool.flush_all();
        for (i, rid) in ids.iter().enumerate() {
            assert_eq!(h.get(*rid), (i as u32).to_le_bytes());
        }
    }
}

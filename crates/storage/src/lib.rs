//! A small page-based storage engine.
//!
//! The Direct Mesh paper measures query cost as the *number of disk
//! accesses* reported by Oracle after flushing the database and system
//! buffers. This crate reproduces that measurement environment from
//! scratch:
//!
//! * [`page`] — fixed 8 KiB pages and little-endian field codecs,
//! * [`store`] — the [`store::PageStore`] trait with an in-memory and a
//!   file-backed implementation,
//! * [`buffer`] — a buffer pool with LRU eviction, dirty-page write-back,
//!   `flush_all` (the "cold cache" switch used before every measured
//!   query) and an [`stats::AccessStats`] counter that records every page
//!   fetched from the underlying store,
//! * [`heap`] — slotted heap files with variable-length records,
//! * [`pack`] — varint/zig-zag/XOR-delta primitives shared by the
//!   compact record codecs layered above,
//! * [`btree`] — a disk-resident B+-tree mapping `u64 → u64`, used for
//!   primary-key (`node id → record`) lookups.
//!
//! All spatial indexes (R\*-tree, LOD-quadtree) live in `dm-index` and are
//! built on these primitives, exactly as the paper builds its indexes on
//! plain Oracle tables rather than Oracle Spatial.

pub mod btree;
pub mod buffer;
pub mod checksum;
pub mod error;
pub mod fault;
pub mod heap;
pub mod pack;
pub mod page;
pub mod stats;
pub mod store;
pub mod wal;

pub use btree::BTree;
pub use buffer::BufferPool;
pub use checksum::{crc32, Crc32Hasher};
pub use error::{StorageError, StorageResult};
pub use fault::{FaultConfig, FaultCounters, FaultInjector, KillSwitch, WriteVerdict};
pub use heap::{HeapFile, PageView, RecordId};
pub use page::{PageId, PAGE_DATA, PAGE_SIZE};
pub use stats::{thread_reads, thread_retries, AccessStats, StatsSnapshot};
pub use store::{FileStore, MemStore, PageStore};
pub use wal::{RootFile, RootRecord, Wal, WalRecovery};

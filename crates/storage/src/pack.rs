//! Byte-oriented compression primitives shared by the compact on-disk
//! codecs (`dm-core`'s v3 heap records, `dm-mtm`'s DMPM v3 files).
//!
//! Three building blocks, all lossless for every input bit pattern:
//!
//! * **LEB128 varints** (`put_varint`/`get_varint`) — 7 bits per byte,
//!   LSB first; values below 128 cost one byte, a full `u64` costs ten.
//! * **Zig-zag** (`zigzag`/`unzigzag`) — maps signed deltas to unsigned
//!   so small negative differences stay small varints.
//! * **`f64` XOR deltas** (`put_fdelta`/`get_fdelta`) — a Gorilla-style
//!   byte-granular scheme: the caller XORs the two bit patterns; the
//!   encoding strips the XOR's leading *and* trailing zero bytes behind
//!   a one-byte `(lead << 4) | trail` header. Equal values cost one
//!   byte; values sharing sign/exponent/coarse mantissa (clustered
//!   coordinates) or mantissa tails (grid-aligned coordinates) cost a
//!   few; the worst case is nine. Works on raw bit patterns, so NaNs,
//!   infinities and subnormals round-trip bit-exactly.
//!
//! Decoders panic with descriptive messages on truncated or malformed
//! input — record framing above them converts that into the same
//! "corrupt record" failure mode the flat codec has.

/// Append `v` as an LEB128 varint.
#[inline]
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Read an LEB128 varint at `*off`, advancing it. Panics on truncation
/// or a varint longer than a `u64` can hold.
#[inline]
pub fn get_varint(b: &[u8], off: &mut usize) -> u64 {
    // Fast paths: one- and two-byte values dominate page scans (slot
    // deltas, small connectivity ids, short lengths).
    if let Some(&byte) = b.get(*off) {
        if byte < 0x80 {
            *off += 1;
            return u64::from(byte);
        }
        if let Some(&b2) = b.get(*off + 1) {
            if b2 < 0x80 {
                *off += 2;
                return u64::from(byte & 0x7F) | (u64::from(b2) << 7);
            }
        }
    }
    get_varint_slow(b, off)
}

fn get_varint_slow(b: &[u8], off: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        assert!(*off < b.len(), "truncated varint");
        let byte = b[*off];
        *off += 1;
        assert!(
            shift < 64 && (shift < 63 || byte <= 1),
            "varint overflows u64"
        );
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// Map a signed delta to an unsigned value with small magnitudes first:
/// 0, -1, 1, -2, 2, …
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append the XOR `d` of two `f64` bit patterns: one header byte
/// `(leading_zero_bytes << 4) | trailing_zero_bytes`, then the non-zero
/// middle bytes little-endian. `d == 0` encodes as the single header
/// byte `0x80` (eight leading zero bytes, nothing else).
#[inline]
pub fn put_fdelta(out: &mut Vec<u8>, d: u64) {
    if d == 0 {
        out.push(0x80);
        return;
    }
    let lead = (d.leading_zeros() / 8) as usize;
    let trail = (d.trailing_zeros() / 8) as usize;
    let mid = 8 - lead - trail;
    out.push(((lead as u8) << 4) | trail as u8);
    out.extend_from_slice(&(d >> (8 * trail)).to_le_bytes()[..mid]);
}

/// Read an XOR delta written by [`put_fdelta`] at `*off`, advancing it.
#[inline]
pub fn get_fdelta(b: &[u8], off: &mut usize) -> u64 {
    assert!(*off < b.len(), "truncated f64 delta");
    let hdr = b[*off];
    *off += 1;
    let lead = (hdr >> 4) as usize;
    let trail = (hdr & 0x0F) as usize;
    assert!(lead + trail <= 8, "malformed f64 delta header");
    let mid = 8 - lead - trail;
    if mid == 0 {
        return 0;
    }
    // Fast path: one unaligned 8-byte load masked down to `mid` bytes —
    // page buffers almost always have 8 readable bytes at the cursor.
    if let Some(window) = b.get(*off..*off + 8) {
        let raw = u64::from_le_bytes(window.try_into().unwrap());
        let mask = if mid == 8 {
            u64::MAX
        } else {
            (1u64 << (8 * mid)) - 1
        };
        *off += mid;
        return (raw & mask) << (8 * trail);
    }
    assert!(*off + mid <= b.len(), "truncated f64 delta");
    let mut bytes = [0u8; 8];
    bytes[..mid].copy_from_slice(&b[*off..*off + mid]);
    *off += mid;
    u64::from_le_bytes(bytes) << (8 * trail)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            255,
            300,
            (1 << 14) - 1,
            1 << 14,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut off = 0;
            assert_eq!(get_varint(&out, &mut off), v);
            assert_eq!(off, out.len(), "exactly consumed for {v}");
        }
        let mut out = Vec::new();
        put_varint(&mut out, 5);
        assert_eq!(out.len(), 1);
        put_varint(&mut out, u64::MAX);
        assert_eq!(out.len(), 11, "u64::MAX takes ten bytes");
    }

    #[test]
    #[should_panic(expected = "truncated varint")]
    fn varint_rejects_truncation() {
        let mut off = 0;
        get_varint(&[0x80, 0x80], &mut off);
    }

    #[test]
    #[should_panic(expected = "varint overflows u64")]
    fn varint_rejects_overflow() {
        let mut off = 0;
        get_varint(&[0xFF; 11], &mut off);
    }

    #[test]
    fn zigzag_orders_by_magnitude() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        for v in [0i64, 1, -1, 1000, -1000, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn fdelta_roundtrip_and_sizes() {
        let cases: &[(u64, usize)] = &[
            (0, 1),                     // equal values: header only
            (0xFF, 2),                  // one low byte
            (0xFF00, 2),                // one middle byte, trail stripped
            (0x00FF_0000_0000_0000, 2), // high byte, lead stripped
            (u64::MAX, 9),              // worst case: all bytes live
            (1u64 << 63, 2),            // sign-bit-only flip
            (f64::to_bits(1.5) ^ f64::to_bits(2.5), 3),
        ];
        for &(d, expect_len) in cases {
            let mut out = Vec::new();
            put_fdelta(&mut out, d);
            assert_eq!(out.len(), expect_len, "encoded size of {d:#x}");
            let mut off = 0;
            assert_eq!(get_fdelta(&out, &mut off), d);
            assert_eq!(off, out.len());
        }
    }

    #[test]
    fn fdelta_exotic_bit_patterns_roundtrip() {
        for bits in [
            f64::NAN.to_bits(),
            f64::INFINITY.to_bits(),
            f64::NEG_INFINITY.to_bits(),
            1u64, // smallest subnormal
            f64::MIN_POSITIVE.to_bits() - 1,
            (-0.0f64).to_bits(),
        ] {
            for base in [0u64, f64::to_bits(123.456)] {
                let mut out = Vec::new();
                put_fdelta(&mut out, bits ^ base);
                let mut off = 0;
                assert_eq!(get_fdelta(&out, &mut off) ^ base, bits);
            }
        }
    }

    #[test]
    #[should_panic(expected = "malformed f64 delta header")]
    fn fdelta_rejects_bad_header() {
        let mut off = 0;
        get_fdelta(&[0x77, 0, 0], &mut off); // lead 7 + trail 7 > 8
    }

    #[test]
    #[should_panic(expected = "truncated f64 delta")]
    fn fdelta_rejects_truncation() {
        let mut off = 0;
        get_fdelta(&[0x00, 1, 2, 3], &mut off); // header demands 8 bytes
    }
}

//! Pages and little-endian field codecs.

/// Size of every page in bytes. 8 KiB matches the common DBMS block size
/// (Oracle's default block size in the paper's era).
pub const PAGE_SIZE: usize = 8192;

/// Bytes reserved at the end of every page for the CRC32 trailer
/// (see [`crate::checksum`]).
pub const CHECKSUM_LEN: usize = 4;

/// Usable payload bytes per page: page layouts (heap, B+-tree, spatial
/// index nodes, catalog) must confine themselves to `[0, PAGE_DATA)`; the
/// buffer pool owns the trailer.
pub const PAGE_DATA: usize = PAGE_SIZE - CHECKSUM_LEN;

/// Identifier of a page within a store. Page 0 is valid.
pub type PageId = u32;

/// Sentinel for "no page".
pub const NO_PAGE: PageId = u32::MAX;

/// An owned page buffer.
pub type PageBuf = Box<[u8; PAGE_SIZE]>;

/// Allocate a zeroed page buffer.
pub fn zeroed_page() -> PageBuf {
    // A boxed array literal would build on the stack first; go through a
    // Vec so the allocation is zeroed directly on the heap.
    vec![0u8; PAGE_SIZE]
        .into_boxed_slice()
        .try_into()
        .expect("PAGE_SIZE slice")
}

/// Little-endian read/write helpers over a byte slice. All offsets are in
/// bytes and bounds-checked through the slice indexing.
pub mod codec {
    #[inline]
    pub fn get_u16(b: &[u8], off: usize) -> u16 {
        u16::from_le_bytes(b[off..off + 2].try_into().unwrap())
    }

    #[inline]
    pub fn put_u16(b: &mut [u8], off: usize, v: u16) {
        b[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub fn get_u32(b: &[u8], off: usize) -> u32 {
        u32::from_le_bytes(b[off..off + 4].try_into().unwrap())
    }

    #[inline]
    pub fn put_u32(b: &mut [u8], off: usize, v: u32) {
        b[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub fn get_u64(b: &[u8], off: usize) -> u64 {
        u64::from_le_bytes(b[off..off + 8].try_into().unwrap())
    }

    #[inline]
    pub fn put_u64(b: &mut [u8], off: usize, v: u64) {
        b[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub fn get_f32(b: &[u8], off: usize) -> f32 {
        f32::from_le_bytes(b[off..off + 4].try_into().unwrap())
    }

    #[inline]
    pub fn put_f32(b: &mut [u8], off: usize, v: f32) {
        b[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub fn get_f64(b: &[u8], off: usize) -> f64 {
        f64::from_le_bytes(b[off..off + 8].try_into().unwrap())
    }

    #[inline]
    pub fn put_f64(b: &mut [u8], off: usize, v: f64) {
        b[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_is_zero() {
        let p = zeroed_page();
        assert_eq!(p.len(), PAGE_SIZE);
        assert!(p.iter().all(|&b| b == 0));
    }

    #[test]
    fn codec_roundtrip() {
        let mut b = [0u8; 32];
        codec::put_u16(&mut b, 0, 0xBEEF);
        codec::put_u32(&mut b, 2, 0xDEAD_BEEF);
        codec::put_u64(&mut b, 6, u64::MAX - 7);
        codec::put_f32(&mut b, 14, -1234.5);
        assert_eq!(codec::get_u16(&b, 0), 0xBEEF);
        assert_eq!(codec::get_u32(&b, 2), 0xDEAD_BEEF);
        assert_eq!(codec::get_u64(&b, 6), u64::MAX - 7);
        assert_eq!(codec::get_f32(&b, 14), -1234.5);
    }

    #[test]
    #[should_panic]
    fn codec_out_of_bounds_panics() {
        let b = [0u8; 4];
        codec::get_u64(&b, 0);
    }
}

//! Disk-access statistics.
//!
//! The paper's sole performance metric is the number of disk accesses
//! (Oracle's `physical reads` after a buffer flush). [`AccessStats`]
//! counts every page the buffer pool fetches from or writes back to the
//! underlying store. Measured queries call `reset` after `flush_all` and
//! read a [`StatsSnapshot`] afterwards.

use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    /// Retries recorded *by this thread*, across all pools. A thread runs
    /// one storage operation at a time, so the delta of
    /// [`thread_retries`] around an operation attributes retry spend
    /// exactly — even when other threads are retrying the same pages
    /// concurrently. Global-counter deltas cannot do this: two workers
    /// each observing the shared counter would both absorb the other's
    /// retries into their own tally.
    static THREAD_RETRIES: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };

    /// Page reads (cache misses) recorded *by this thread*, across all
    /// pools. Same attribution argument as [`THREAD_RETRIES`]: a
    /// before/after delta of this counter around an operation counts
    /// exactly the disk accesses that operation caused, no matter how
    /// many other sessions are hitting the same pool concurrently.
    static THREAD_READS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Monotone count of retries recorded by the calling thread (see
/// [`AccessStats::record_retry`]). Measure an operation's retry spend as
/// `thread_retries()` before/after — never as a delta of the shared
/// [`StatsSnapshot::retries`], which mixes in other threads' retries.
pub fn thread_retries() -> u64 {
    THREAD_RETRIES.with(|c| c.get())
}

/// Monotone count of page reads recorded by the calling thread (see
/// [`AccessStats::record_read`]). The paper's disk-access metric for *one*
/// operation under concurrency: take this before and after, use the
/// delta. A delta of the shared [`StatsSnapshot::reads`] would absorb
/// every other session's traffic.
pub fn thread_reads() -> u64 {
    THREAD_READS.with(|c| c.get())
}

/// Monotonic counters for page traffic between buffer pool and store.
#[derive(Default, Debug)]
pub struct AccessStats {
    reads: AtomicU64,
    writes: AtomicU64,
    retries: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Pages fetched from the store (cache misses) — the paper's
    /// "number of disk accesses".
    pub reads: u64,
    /// Dirty pages written back to the store.
    pub writes: u64,
    /// Re-issued page reads after a retryable failure (transient I/O
    /// error or checksum mismatch). Not part of [`Self::total`]: the
    /// paper's disk-access metric counts logical fetches, and a retry is
    /// the same logical fetch tried again.
    pub retries: u64,
}

impl StatsSnapshot {
    /// Total page traffic.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            retries: self.retries - earlier.retries,
        }
    }
}

impl AccessStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one page fetched from the store. Also bumps the calling
    /// thread's [`thread_reads`] counter so concurrent operations can
    /// each attribute exactly their own disk accesses.
    #[inline]
    pub fn record_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        THREAD_READS.with(|c| c.set(c.get() + 1));
    }

    /// Increment the read counter *without* touching the calling
    /// thread's attribution tally — for per-shard mirror counters, whose
    /// paired global [`Self::record_read`] already bumped
    /// [`thread_reads`].
    #[inline]
    pub(crate) fn mirror_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn record_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one re-issued page read. Also bumps the calling thread's
    /// [`thread_retries`] counter so concurrent operations can each
    /// attribute exactly their own retry spend.
    #[inline]
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        THREAD_RETRIES.with(|c| c.set(c.get() + 1));
    }

    /// Increment the retry counter *without* touching the calling
    /// thread's attribution tally. Used for per-shard mirror counters,
    /// whose paired global [`Self::record_retry`] call already bumped
    /// [`thread_retries`] — mirroring through `record_retry` would
    /// double-attribute every retry.
    #[inline]
    pub(crate) fn mirror_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_reset() {
        let s = AccessStats::new();
        s.record_read();
        s.record_read();
        s.record_write();
        s.record_retry();
        assert_eq!(
            s.snapshot(),
            StatsSnapshot {
                reads: 2,
                writes: 1,
                retries: 1
            }
        );
        assert_eq!(s.snapshot().total(), 3, "retries are not logical accesses");
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn thread_retries_attribute_to_the_calling_thread() {
        let s = std::sync::Arc::new(AccessStats::new());
        let base_here = thread_retries();
        s.record_retry();
        s.record_retry();
        let s2 = std::sync::Arc::clone(&s);
        let other = std::thread::spawn(move || {
            let base = thread_retries();
            s2.record_retry();
            thread_retries() - base
        })
        .join()
        .unwrap();
        assert_eq!(other, 1, "other thread sees exactly its own retry");
        assert_eq!(
            thread_retries() - base_here,
            2,
            "this thread's tally is untouched by the other thread"
        );
        assert_eq!(s.snapshot().retries, 3, "global counter sees all three");
    }

    #[test]
    fn thread_reads_attribute_to_the_calling_thread() {
        let s = std::sync::Arc::new(AccessStats::new());
        let base_here = thread_reads();
        s.record_read();
        s.record_read();
        s.mirror_read(); // shard mirror: global counter only
        let s2 = std::sync::Arc::clone(&s);
        let other = std::thread::spawn(move || {
            let base = thread_reads();
            s2.record_read();
            thread_reads() - base
        })
        .join()
        .unwrap();
        assert_eq!(other, 1, "other thread sees exactly its own read");
        assert_eq!(
            thread_reads() - base_here,
            2,
            "mirror_read must not inflate the thread-local tally"
        );
        assert_eq!(s.snapshot().reads, 4, "global counter sees all four");
    }

    #[test]
    fn snapshot_delta() {
        let s = AccessStats::new();
        s.record_read();
        let before = s.snapshot();
        s.record_read();
        s.record_write();
        s.record_retry();
        let delta = s.snapshot().since(&before);
        assert_eq!(
            delta,
            StatsSnapshot {
                reads: 1,
                writes: 1,
                retries: 1
            }
        );
    }
}

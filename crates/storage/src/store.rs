//! Page stores: the "disk" under the buffer pool.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use parking_lot::Mutex;

use crate::page::{zeroed_page, PageBuf, PageId, PAGE_SIZE};

/// A flat array of pages. Implementations must be usable behind a shared
/// reference (the buffer pool serializes access).
pub trait PageStore: Send + Sync {
    /// Read page `id` into `buf`. Panics if the page was never allocated.
    fn read_page(&self, id: PageId, buf: &mut [u8; PAGE_SIZE]);

    /// Write `buf` to page `id`. Panics if the page was never allocated.
    fn write_page(&self, id: PageId, buf: &[u8; PAGE_SIZE]);

    /// Allocate a new zeroed page and return its id.
    fn allocate(&self) -> PageId;

    /// Number of allocated pages.
    fn num_pages(&self) -> u32;

    /// Flush any OS-level buffering (no-op for the memory store).
    fn sync(&self) {}
}

/// An in-memory store. Deterministic and fast; the default for tests and
/// benchmarks (disk accesses are *counted*, not timed, exactly as the
/// paper reports Oracle's `physical reads` statistic rather than seconds).
#[derive(Default)]
pub struct MemStore {
    pages: Mutex<Vec<PageBuf>>,
}

impl MemStore {
    pub fn new() -> Self {
        Self::default()
    }
}

impl PageStore for MemStore {
    fn read_page(&self, id: PageId, buf: &mut [u8; PAGE_SIZE]) {
        let pages = self.pages.lock();
        assert!((id as usize) < pages.len(), "read of unallocated page {id}");
        buf.copy_from_slice(&pages[id as usize][..]);
    }

    fn write_page(&self, id: PageId, buf: &[u8; PAGE_SIZE]) {
        let mut pages = self.pages.lock();
        assert!((id as usize) < pages.len(), "write of unallocated page {id}");
        pages[id as usize].copy_from_slice(buf);
    }

    fn allocate(&self) -> PageId {
        let mut pages = self.pages.lock();
        pages.push(zeroed_page());
        (pages.len() - 1) as PageId
    }

    fn num_pages(&self) -> u32 {
        self.pages.lock().len() as u32
    }
}

/// A file-backed store: page `i` lives at byte offset `i * PAGE_SIZE`.
pub struct FileStore {
    file: Mutex<File>,
    num_pages: Mutex<u32>,
}

impl FileStore {
    /// Create or truncate the file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileStore { file: Mutex::new(file), num_pages: Mutex::new(0) })
    }

    /// Open an existing store file.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("store file length {len} is not a multiple of the page size"),
            ));
        }
        let num_pages = (len / PAGE_SIZE as u64) as u32;
        Ok(FileStore { file: Mutex::new(file), num_pages: Mutex::new(num_pages) })
    }
}

impl PageStore for FileStore {
    fn read_page(&self, id: PageId, buf: &mut [u8; PAGE_SIZE]) {
        assert!(id < *self.num_pages.lock(), "read of unallocated page {id}");
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64)).expect("seek");
        file.read_exact(buf).expect("read_page");
    }

    fn write_page(&self, id: PageId, buf: &[u8; PAGE_SIZE]) {
        assert!(id < *self.num_pages.lock(), "write of unallocated page {id}");
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64)).expect("seek");
        file.write_all(buf).expect("write_page");
    }

    fn allocate(&self) -> PageId {
        let mut n = self.num_pages.lock();
        let id = *n;
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64)).expect("seek");
        file.write_all(&zeroed_page()[..]).expect("allocate");
        *n += 1;
        id
    }

    fn num_pages(&self) -> u32 {
        *self.num_pages.lock()
    }

    fn sync(&self) {
        self.file.lock().sync_data().expect("sync");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn PageStore) {
        assert_eq!(store.num_pages(), 0);
        let a = store.allocate();
        let b = store.allocate();
        assert_eq!((a, b), (0, 1));
        assert_eq!(store.num_pages(), 2);

        let mut buf = zeroed_page();
        buf[0] = 0xAB;
        buf[PAGE_SIZE - 1] = 0xCD;
        store.write_page(b, &buf);

        let mut out = zeroed_page();
        store.read_page(b, &mut out);
        assert_eq!(out[0], 0xAB);
        assert_eq!(out[PAGE_SIZE - 1], 0xCD);

        store.read_page(a, &mut out);
        assert!(out.iter().all(|&x| x == 0), "fresh page must be zeroed");
    }

    #[test]
    fn mem_store_roundtrip() {
        exercise(&MemStore::new());
    }

    #[test]
    fn file_store_roundtrip() {
        let path = std::env::temp_dir().join(format!("dm_store_{}.db", std::process::id()));
        let store = FileStore::create(&path).unwrap();
        exercise(&store);
        store.sync();
        drop(store);
        // Reopen and verify persistence.
        let store = FileStore::open(&path).unwrap();
        assert_eq!(store.num_pages(), 2);
        let mut out = zeroed_page();
        store.read_page(1, &mut out);
        assert_eq!(out[0], 0xAB);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_store_rejects_torn_file() {
        let path = std::env::temp_dir().join(format!("dm_torn_{}.db", std::process::id()));
        std::fs::write(&path, vec![0u8; PAGE_SIZE + 17]).unwrap();
        assert!(FileStore::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn mem_store_read_unallocated_panics() {
        let store = MemStore::new();
        let mut buf = zeroed_page();
        store.read_page(3, &mut buf);
    }
}

//! Page stores: the "disk" under the buffer pool.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use parking_lot::{Mutex, RwLock};

use crate::error::{StorageError, StorageResult};
use crate::page::{zeroed_page, PageBuf, PageId, PAGE_SIZE};

/// A flat array of pages. Implementations must be usable behind a shared
/// reference (the buffer pool serializes access).
///
/// All operations are fallible: implementations report unallocated page
/// ids as [`StorageError::OutOfBounds`] and surface I/O problems instead
/// of panicking, so the buffer pool can retry or degrade.
pub trait PageStore: Send + Sync {
    /// Read page `id` into `buf`.
    fn read_page(&self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> StorageResult<()>;

    /// Write `buf` to page `id`.
    fn write_page(&self, id: PageId, buf: &[u8; PAGE_SIZE]) -> StorageResult<()>;

    /// Allocate a new zeroed page and return its id.
    fn allocate(&self) -> StorageResult<PageId>;

    /// Number of allocated pages.
    fn num_pages(&self) -> u32;

    /// Flush any OS-level buffering (no-op for the memory store).
    fn sync(&self) -> StorageResult<()> {
        Ok(())
    }
}

/// An in-memory store. Deterministic and fast; the default for tests and
/// benchmarks (disk accesses are *counted*, not timed, exactly as the
/// paper reports Oracle's `physical reads` statistic rather than seconds).
///
/// Pages sit behind an `RwLock` so concurrent buffer-pool shards can
/// fetch pages simultaneously; only `allocate`/`write_page` take the
/// write lock.
#[derive(Default)]
pub struct MemStore {
    pages: RwLock<Vec<PageBuf>>,
}

impl MemStore {
    pub fn new() -> Self {
        Self::default()
    }
}

impl PageStore for MemStore {
    fn read_page(&self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> StorageResult<()> {
        let pages = self.pages.read();
        let page = pages.get(id as usize).ok_or(StorageError::OutOfBounds {
            page: id,
            num_pages: pages.len() as u32,
        })?;
        buf.copy_from_slice(&page[..]);
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &[u8; PAGE_SIZE]) -> StorageResult<()> {
        let mut pages = self.pages.write();
        let n = pages.len() as u32;
        let page = pages
            .get_mut(id as usize)
            .ok_or(StorageError::OutOfBounds {
                page: id,
                num_pages: n,
            })?;
        page.copy_from_slice(buf);
        Ok(())
    }

    fn allocate(&self) -> StorageResult<PageId> {
        let mut pages = self.pages.write();
        pages.push(zeroed_page());
        Ok((pages.len() - 1) as PageId)
    }

    fn num_pages(&self) -> u32 {
        self.pages.read().len() as u32
    }
}

/// A file-backed store: page `i` lives at byte offset `i * PAGE_SIZE`.
pub struct FileStore {
    file: Mutex<File>,
    num_pages: Mutex<u32>,
}

impl FileStore {
    /// Create or truncate the file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileStore {
            file: Mutex::new(file),
            num_pages: Mutex::new(0),
        })
    }

    /// Open an existing store file.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("store file length {len} is not a multiple of the page size"),
            ));
        }
        let num_pages = (len / PAGE_SIZE as u64) as u32;
        Ok(FileStore {
            file: Mutex::new(file),
            num_pages: Mutex::new(num_pages),
        })
    }

    /// Open a store file that may carry a crash tail: a trailing partial
    /// page (a page write died mid-sector) is rounded away by truncation
    /// instead of rejecting the whole file. Committed pages are never in
    /// the tail — the root file's `store_pages` bounds them — so this
    /// loses only uncommitted copy-on-write garbage.
    pub fn open_trimmed(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        let whole = len - len % PAGE_SIZE as u64;
        if whole != len {
            file.set_len(whole)?;
            file.sync_data()?;
        }
        Ok(FileStore {
            file: Mutex::new(file),
            num_pages: Mutex::new((whole / PAGE_SIZE as u64) as u32),
        })
    }

    /// Shrink the store to exactly `n_pages` pages, discarding everything
    /// beyond (uncommitted pages allocated by an edit that never reached
    /// its commit point). Errors if the file is already shorter — the
    /// committed state cannot be missing bytes.
    pub fn truncate_to(&self, n_pages: u32) -> StorageResult<()> {
        let mut n = self.num_pages.lock();
        if *n < n_pages {
            return Err(StorageError::ShortFile {
                page: n_pages.saturating_sub(1),
            });
        }
        if *n > n_pages {
            let file = self.file.lock();
            file.set_len(n_pages as u64 * PAGE_SIZE as u64)?;
            file.sync_data()?;
            *n = n_pages;
        }
        Ok(())
    }

    /// Bounds check shared by reads and writes: seeking past EOF would
    /// silently read zeros / extend the file, so unallocated ids must be
    /// rejected before any positioning happens.
    fn check_bounds(&self, id: PageId) -> StorageResult<()> {
        let n = *self.num_pages.lock();
        if id >= n {
            return Err(StorageError::OutOfBounds {
                page: id,
                num_pages: n,
            });
        }
        Ok(())
    }
}

impl PageStore for FileStore {
    fn read_page(&self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> StorageResult<()> {
        self.check_bounds(id)?;
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        file.read_exact(buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                StorageError::ShortFile { page: id }
            } else {
                StorageError::Io(e)
            }
        })
    }

    fn write_page(&self, id: PageId, buf: &[u8; PAGE_SIZE]) -> StorageResult<()> {
        self.check_bounds(id)?;
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        file.write_all(buf)?;
        Ok(())
    }

    fn allocate(&self) -> StorageResult<PageId> {
        let mut n = self.num_pages.lock();
        let id = *n;
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        file.write_all(&zeroed_page()[..])?;
        *n += 1;
        Ok(id)
    }

    fn num_pages(&self) -> u32 {
        *self.num_pages.lock()
    }

    fn sync(&self) -> StorageResult<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn PageStore) {
        assert_eq!(store.num_pages(), 0);
        let a = store.allocate().unwrap();
        let b = store.allocate().unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(store.num_pages(), 2);

        let mut buf = zeroed_page();
        buf[0] = 0xAB;
        buf[PAGE_SIZE - 1] = 0xCD;
        store.write_page(b, &buf).unwrap();

        let mut out = zeroed_page();
        store.read_page(b, &mut out).unwrap();
        assert_eq!(out[0], 0xAB);
        assert_eq!(out[PAGE_SIZE - 1], 0xCD);

        store.read_page(a, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0), "fresh page must be zeroed");

        // Out-of-bounds access in both directions is a typed error, not
        // a panic and not a silent file extension.
        assert!(matches!(
            store.read_page(2, &mut out),
            Err(StorageError::OutOfBounds {
                page: 2,
                num_pages: 2
            })
        ));
        assert!(matches!(
            store.write_page(7, &buf),
            Err(StorageError::OutOfBounds {
                page: 7,
                num_pages: 2
            })
        ));
        assert_eq!(store.num_pages(), 2, "failed write must not allocate");
    }

    #[test]
    fn mem_store_roundtrip() {
        exercise(&MemStore::new());
    }

    #[test]
    fn file_store_roundtrip() {
        let path = std::env::temp_dir().join(format!("dm_store_{}.db", std::process::id()));
        let store = FileStore::create(&path).unwrap();
        exercise(&store);
        store.sync().unwrap();
        drop(store);
        // Reopen and verify persistence.
        let store = FileStore::open(&path).unwrap();
        assert_eq!(store.num_pages(), 2);
        let mut out = zeroed_page();
        store.read_page(1, &mut out).unwrap();
        assert_eq!(out[0], 0xAB);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_store_rejects_torn_file() {
        let path = std::env::temp_dir().join(format!("dm_torn_{}.db", std::process::id()));
        std::fs::write(&path, vec![0u8; PAGE_SIZE + 17]).unwrap();
        assert!(FileStore::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_store_write_out_of_bounds_does_not_extend_file() {
        let path = std::env::temp_dir().join(format!("dm_oob_{}.db", std::process::id()));
        let store = FileStore::create(&path).unwrap();
        store.allocate().unwrap();
        let buf = zeroed_page();
        assert!(store.write_page(100, &buf).is_err());
        store.sync().unwrap();
        drop(store);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            PAGE_SIZE as u64,
            "rejected write must leave the file untouched"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mem_store_read_unallocated_is_an_error() {
        let store = MemStore::new();
        let mut buf = zeroed_page();
        let err = store.read_page(3, &mut buf).unwrap_err();
        assert!(matches!(
            err,
            StorageError::OutOfBounds {
                page: 3,
                num_pages: 0
            }
        ));
    }
}

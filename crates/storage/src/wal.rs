//! Write-ahead log and versioned root file for the crash-safe write path.
//!
//! Durability protocol (see DESIGN.md §11): an edit is first appended to
//! the WAL and fsynced — from that instant it is *durable* and will be
//! replayed on reopen. Only then are copy-on-write pages written, and the
//! commit point is a single 64-byte root-slot write in [`RootFile`].
//! A crash at any byte offset therefore leaves the store in exactly one
//! of two states: pre-edit (WAL tail absent or torn — discarded) or
//! post-edit (WAL entry complete — replayed).
//!
//! Both artifacts reuse the page-checksum CRC32 polynomial
//! ([`crate::checksum::crc32`]), extending the one corruption-detection
//! discipline to every durable byte the engine writes.
//!
//! ## WAL framing
//!
//! ```text
//! offset  size  field
//! 0       4     magic   "DMWL" (little-endian u32)
//! 4       4     len     payload length in bytes
//! 8       4     crc32   over the payload
//! 12      len   payload opaque (the core layer owns the encoding)
//! ```
//!
//! [`Wal::open`] scans records front to back; the first frame whose
//! magic, length or CRC does not check out ends the valid prefix and the
//! file is truncated there (torn-tail detection). A torn *tail* is the
//! expected signature of a crash mid-append; a torn frame *followed by
//! more bytes* would mean silent data corruption, but since appends are
//! strictly sequential it cannot arise from any crash and is treated the
//! same way — everything from the first bad byte on is discarded.
//!
//! ## Root file
//!
//! Two fixed 64-byte slots at offsets 0 and 64. A commit for epoch `e`
//! writes slot `e % 2`, so the previous root is never overwritten by the
//! write that supersedes it: if the 64-byte slot write itself tears, its
//! CRC fails and [`RootFile::open`] falls back to the other slot — the
//! atomic double-root swap.
//!
//! ```text
//! offset  size  field
//! 0       4     magic         "DMRT" (little-endian u32)
//! 4       8     epoch         commit sequence number, starts at 1
//! 12      4     catalog_page  catalog chain head for this epoch
//! 16      4     store_pages   allocated page count at commit time
//! 20      40    reserved      zero
//! 60      4     crc32         over bytes 0..60
//! ```

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use crate::checksum::crc32;
use crate::error::{StorageError, StorageResult};
use crate::fault::{KillSwitch, WriteVerdict};
use crate::page::PageId;

/// WAL frame magic: `b"DMWL"` as a little-endian u32.
pub const WAL_MAGIC: u32 = u32::from_le_bytes(*b"DMWL");
/// WAL frame header size (magic + len + crc).
pub const WAL_HEADER: usize = 12;
/// Hard cap on a single WAL payload; a corrupt length prefix must not
/// make recovery allocate gigabytes.
pub const WAL_MAX_PAYLOAD: u32 = 64 << 20;

/// Root slot magic: `b"DMRT"` as a little-endian u32.
pub const ROOT_MAGIC: u32 = u32::from_le_bytes(*b"DMRT");
/// Size of one root slot; the file holds exactly two.
pub const ROOT_SLOT: usize = 64;

/// One committed store version: which catalog chain is live and how many
/// pages the store file held when it was committed (pages beyond that are
/// uncommitted copy-on-write garbage after a crash).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RootRecord {
    /// Commit sequence number; the first committed edit is epoch 1.
    pub epoch: u64,
    /// Head page of the live catalog chain.
    pub catalog_page: PageId,
    /// Allocated page count of the store file at commit time.
    pub store_pages: u32,
}

impl RootRecord {
    fn encode(&self) -> [u8; ROOT_SLOT] {
        let mut slot = [0u8; ROOT_SLOT];
        slot[0..4].copy_from_slice(&ROOT_MAGIC.to_le_bytes());
        slot[4..12].copy_from_slice(&self.epoch.to_le_bytes());
        slot[12..16].copy_from_slice(&self.catalog_page.to_le_bytes());
        slot[16..20].copy_from_slice(&self.store_pages.to_le_bytes());
        let crc = crc32(&slot[..ROOT_SLOT - 4]);
        slot[ROOT_SLOT - 4..].copy_from_slice(&crc.to_le_bytes());
        slot
    }

    fn decode(slot: &[u8]) -> Option<RootRecord> {
        if slot.len() < ROOT_SLOT {
            return None;
        }
        let stored = u32::from_le_bytes(slot[ROOT_SLOT - 4..ROOT_SLOT].try_into().unwrap());
        if stored != crc32(&slot[..ROOT_SLOT - 4]) {
            return None;
        }
        if u32::from_le_bytes(slot[0..4].try_into().unwrap()) != ROOT_MAGIC {
            return None;
        }
        Some(RootRecord {
            epoch: u64::from_le_bytes(slot[4..12].try_into().unwrap()),
            catalog_page: u32::from_le_bytes(slot[12..16].try_into().unwrap()),
            store_pages: u32::from_le_bytes(slot[16..20].try_into().unwrap()),
        })
    }
}

/// The two-slot versioned root file.
pub struct RootFile {
    file: File,
    kill: Option<Arc<KillSwitch>>,
}

impl RootFile {
    /// Open (or create) the root file at `path` and return the newest
    /// valid committed root, or `None` when no commit has ever succeeded
    /// (a legacy batch-built store: catalog at page 0, epoch 0).
    pub fn open(path: &Path) -> io::Result<(RootFile, Option<RootRecord>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        // Pick the valid slot with the highest epoch: the slot being
        // written when a crash hit fails its CRC, so the other one wins.
        let root = [0, ROOT_SLOT]
            .iter()
            .filter_map(|&off| bytes.get(off..off + ROOT_SLOT).and_then(RootRecord::decode))
            .max_by_key(|r| r.epoch);
        Ok((RootFile { file, kill: None }, root))
    }

    /// Attach a crash switch: subsequent commits draw from its budget.
    pub fn with_kill_switch(mut self, kill: Option<Arc<KillSwitch>>) -> Self {
        self.kill = kill;
        self
    }

    /// Durably publish `rec` as the new root. This is the commit point:
    /// on return the epoch is visible to every future open.
    pub fn commit(&mut self, rec: &RootRecord) -> StorageResult<()> {
        let slot = rec.encode();
        let off = ((rec.epoch % 2) as usize * ROOT_SLOT) as u64;
        let n = match self.kill.as_ref().map(|k| k.verdict(ROOT_SLOT)) {
            None | Some(WriteVerdict::Full) => ROOT_SLOT,
            Some(WriteVerdict::Torn(k)) => k,
            Some(WriteVerdict::Dead) => {
                return Err(self.kill.as_ref().unwrap().dead_error());
            }
        };
        self.file.seek(SeekFrom::Start(off))?;
        self.file.write_all(&slot[..n])?;
        self.file.sync_data()?;
        if n < ROOT_SLOT {
            return Err(self.kill.as_ref().unwrap().dead_error());
        }
        Ok(())
    }
}

/// An entry recovered from the WAL by [`Wal::open`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalEntry {
    pub payload: Vec<u8>,
}

/// What [`Wal::open`] found on disk.
pub struct WalRecovery {
    /// Complete, CRC-verified entries in append order.
    pub entries: Vec<WalEntry>,
    /// Whether a torn tail was detected and truncated away.
    pub torn_tail: bool,
}

/// The append-only write-ahead log.
pub struct Wal {
    file: File,
    kill: Option<Arc<KillSwitch>>,
}

impl Wal {
    /// Open (or create) the WAL at `path`, returning the valid entry
    /// prefix and truncating any torn tail.
    pub fn open(path: &Path) -> io::Result<(Wal, WalRecovery)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut entries = Vec::new();
        let mut pos = 0usize;
        while let Some(frame) = bytes.get(pos..pos + WAL_HEADER) {
            if u32::from_le_bytes(frame[0..4].try_into().unwrap()) != WAL_MAGIC {
                break;
            }
            let len = u32::from_le_bytes(frame[4..8].try_into().unwrap());
            if len > WAL_MAX_PAYLOAD {
                break;
            }
            let stored = u32::from_le_bytes(frame[8..12].try_into().unwrap());
            let Some(payload) = bytes.get(pos + WAL_HEADER..pos + WAL_HEADER + len as usize) else {
                break;
            };
            if crc32(payload) != stored {
                break;
            }
            entries.push(WalEntry {
                payload: payload.to_vec(),
            });
            pos += WAL_HEADER + len as usize;
        }
        let torn_tail = pos < bytes.len();
        if torn_tail {
            file.set_len(pos as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((Wal { file, kill: None }, WalRecovery { entries, torn_tail }))
    }

    /// Attach a crash switch: subsequent appends draw from its budget.
    pub fn with_kill_switch(mut self, kill: Option<Arc<KillSwitch>>) -> Self {
        self.kill = kill;
        self
    }

    /// Append one framed entry. Not durable until [`Wal::sync`] returns.
    pub fn append(&mut self, payload: &[u8]) -> StorageResult<()> {
        if payload.len() as u64 > WAL_MAX_PAYLOAD as u64 {
            return Err(StorageError::RecordTooLarge {
                len: payload.len(),
                max: WAL_MAX_PAYLOAD as usize,
            });
        }
        let mut frame = Vec::with_capacity(WAL_HEADER + payload.len());
        frame.extend_from_slice(&WAL_MAGIC.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        let n = match self.kill.as_ref().map(|k| k.verdict(frame.len())) {
            None | Some(WriteVerdict::Full) => frame.len(),
            Some(WriteVerdict::Torn(k)) => k,
            Some(WriteVerdict::Dead) => {
                return Err(self.kill.as_ref().unwrap().dead_error());
            }
        };
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(&frame[..n])?;
        if n < frame.len() {
            // The crash landed mid-append; make the torn prefix visible
            // to recovery exactly as a real crash would.
            let _ = self.file.sync_data();
            return Err(self.kill.as_ref().unwrap().dead_error());
        }
        Ok(())
    }

    /// Make all appended entries durable.
    pub fn sync(&mut self) -> StorageResult<()> {
        if let Some(ks) = &self.kill {
            if ks.is_dead() {
                return Err(ks.dead_error());
            }
        }
        self.file.sync_data()?;
        Ok(())
    }

    /// Discard every entry (called after the commit point: the edit is
    /// now owned by the committed root, not the log).
    pub fn reset(&mut self) -> StorageResult<()> {
        if let Some(ks) = &self.kill {
            if ks.is_dead() {
                return Err(ks.dead_error());
            }
        }
        self.file.set_len(0)?;
        self.file.sync_data()?;
        self.file.seek(SeekFrom::Start(0))?;
        Ok(())
    }
}

/// Conventional sibling paths for a store file's WAL and root file.
pub fn wal_path(store: &Path) -> std::path::PathBuf {
    let mut p = store.as_os_str().to_owned();
    p.push(".wal");
    std::path::PathBuf::from(p)
}

pub fn root_path(store: &Path) -> std::path::PathBuf {
    let mut p = store.as_os_str().to_owned();
    p.push(".root");
    std::path::PathBuf::from(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dm_wal_{}_{name}", std::process::id()))
    }

    #[test]
    fn wal_roundtrip_and_reset() {
        let path = tmp("rt");
        std::fs::remove_file(&path).ok();
        let (mut wal, rec) = Wal::open(&path).unwrap();
        assert!(rec.entries.is_empty() && !rec.torn_tail);
        wal.append(b"first edit").unwrap();
        wal.append(b"second edit").unwrap();
        wal.sync().unwrap();
        drop(wal);

        let (mut wal, rec) = Wal::open(&path).unwrap();
        assert_eq!(rec.entries.len(), 2);
        assert_eq!(rec.entries[0].payload, b"first edit");
        assert_eq!(rec.entries[1].payload, b"second edit");
        assert!(!rec.torn_tail);
        wal.reset().unwrap();
        drop(wal);

        let (_, rec) = Wal::open(&path).unwrap();
        assert!(rec.entries.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wal_truncates_torn_tail_at_every_cut() {
        let path = tmp("torn");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(b"complete entry").unwrap();
        wal.append(b"doomed entry with a longer payload").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        let first_len = WAL_HEADER + b"complete entry".len();

        for cut in first_len..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (_, rec) = Wal::open(&path).unwrap();
            assert_eq!(rec.entries.len(), 1, "cut at {cut}");
            assert_eq!(rec.entries[0].payload, b"complete entry");
            assert_eq!(rec.torn_tail, cut != first_len, "cut at {cut}");
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                first_len as u64,
                "tail must be truncated away (cut at {cut})"
            );
        }
        // Cuts inside the first frame lose everything.
        for cut in [1, 4, WAL_HEADER, first_len - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (_, rec) = Wal::open(&path).unwrap();
            assert!(rec.entries.is_empty(), "cut at {cut}");
            assert!(rec.torn_tail);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wal_rejects_corrupt_payload() {
        let path = tmp("crc");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(b"checksummed").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let (_, rec) = Wal::open(&path).unwrap();
        assert!(rec.entries.is_empty());
        assert!(rec.torn_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn root_double_slot_swap_survives_torn_commit() {
        let path = tmp("root");
        std::fs::remove_file(&path).ok();
        let (mut root, cur) = RootFile::open(&path).unwrap();
        assert!(cur.is_none(), "fresh root file has no committed epoch");
        let e1 = RootRecord {
            epoch: 1,
            catalog_page: 7,
            store_pages: 100,
        };
        root.commit(&e1).unwrap();
        let e2 = RootRecord {
            epoch: 2,
            catalog_page: 19,
            store_pages: 120,
        };
        root.commit(&e2).unwrap();
        drop(root);
        let (_, cur) = RootFile::open(&path).unwrap();
        assert_eq!(cur, Some(e2), "newest valid epoch wins");

        // Tear the epoch-3 slot write at every byte offset: epoch 3 uses
        // slot 1 (3 % 2), the same slot epoch 1 used, so a torn write
        // must fall back to epoch 2 in slot 0 — never to epoch 1.
        let e3 = RootRecord {
            epoch: 3,
            catalog_page: 33,
            store_pages: 140,
        };
        let slot3 = e3.encode();
        let base = std::fs::read(&path).unwrap();
        for cut in 0..=ROOT_SLOT {
            let mut bytes = base.clone();
            bytes[ROOT_SLOT..ROOT_SLOT + cut].copy_from_slice(&slot3[..cut]);
            std::fs::write(&path, &bytes).unwrap();
            let (_, cur) = RootFile::open(&path).unwrap();
            let expect = if cut == ROOT_SLOT { e3 } else { e2 };
            assert_eq!(cur, Some(expect), "torn commit at byte {cut}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kill_switch_gates_wal_and_root_writes() {
        use crate::fault::KillSwitch;
        let path = tmp("kill");
        std::fs::remove_file(&path).ok();
        let ks = KillSwitch::new(11, 1);
        let (wal, _) = Wal::open(&path).unwrap();
        let mut wal = wal.with_kill_switch(Some(Arc::clone(&ks)));
        wal.append(b"survives").unwrap();
        let err = wal.append(b"crashes").unwrap_err();
        assert!(!err.is_retryable());
        assert!(wal.sync().is_err(), "post-crash sync must fail");
        assert!(wal.reset().is_err(), "post-crash reset must fail");
        drop(wal);
        // Recovery sees the durable prefix; the torn frame is discarded.
        let (_, rec) = Wal::open(&path).unwrap();
        assert_eq!(rec.entries.len(), 1);
        assert_eq!(rec.entries[0].payload, b"survives");
        std::fs::remove_file(&path).ok();

        let rpath = tmp("kill_root");
        std::fs::remove_file(&rpath).ok();
        let ks = KillSwitch::new(11, 0);
        let (root, _) = RootFile::open(&rpath).unwrap();
        let mut root = root.with_kill_switch(Some(ks));
        let rec = RootRecord {
            epoch: 1,
            catalog_page: 3,
            store_pages: 9,
        };
        assert!(root.commit(&rec).is_err(), "commit is the killed write");
        drop(root);
        let (_, cur) = RootFile::open(&rpath).unwrap();
        assert!(
            cur.is_none() || cur == Some(rec),
            "torn commit recovers to no-epoch or the full epoch, never garbage"
        );
        std::fs::remove_file(&rpath).ok();
    }

    #[test]
    fn sibling_paths() {
        let store = Path::new("/tmp/world.dm");
        assert_eq!(wal_path(store), Path::new("/tmp/world.dm.wal"));
        assert_eq!(root_path(store), Path::new("/tmp/world.dm.root"));
    }
}

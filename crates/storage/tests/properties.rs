//! Property-based tests: storage structures against model implementations.

use std::collections::BTreeMap;
use std::sync::Arc;

use dm_storage::checksum::{seal_page, verify_page};
use dm_storage::page::{zeroed_page, PAGE_DATA, PAGE_SIZE};
use dm_storage::{BTree, BufferPool, HeapFile, MemStore};
use proptest::prelude::*;

fn pool(cap: usize) -> Arc<BufferPool> {
    Arc::new(BufferPool::new(Box::new(MemStore::new()), cap))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn heap_roundtrips_arbitrary_records(
        recs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..600),
            1..200,
        )
    ) {
        let mut heap = HeapFile::create(pool(32));
        let rids: Vec<_> = recs.iter().map(|r| heap.insert(r)).collect();
        for (rid, rec) in rids.iter().zip(&recs) {
            prop_assert_eq!(&heap.get(*rid), rec);
        }
        // Scan visits everything in insertion order per page sequence.
        let mut n = 0;
        heap.scan(|_, _| n += 1);
        prop_assert_eq!(n, recs.len());
    }

    #[test]
    fn btree_matches_btreemap_model(
        ops in proptest::collection::vec((any::<u16>(), any::<u64>()), 1..800),
        probes in proptest::collection::vec(any::<u16>(), 1..100),
        lo in any::<u16>(),
        hi in any::<u16>(),
    ) {
        let mut tree = BTree::create(pool(256));
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (k, v) in &ops {
            tree.insert(*k as u64, *v);
            model.insert(*k as u64, *v);
        }
        prop_assert_eq!(tree.len(), model.len() as u64);
        for p in probes {
            prop_assert_eq!(tree.get(p as u64), model.get(&(p as u64)).copied());
        }
        let (lo, hi) = (lo.min(hi) as u64, lo.max(hi) as u64);
        let mut got = Vec::new();
        tree.range(lo, hi, |k, v| got.push((k, v)));
        let want: Vec<_> = model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn buffer_pool_capacity_never_exceeded_and_data_safe(
        cap in 1usize..16,
        writes in proptest::collection::vec((0u8..32, any::<u8>()), 1..200),
    ) {
        let p = pool(cap);
        let pages: Vec<_> = (0..32).map(|_| p.allocate()).collect();
        let mut model = [0u8; 32];
        for (slot, val) in writes {
            p.write(pages[slot as usize], |b| b[7] = val);
            model[slot as usize] = val;
            prop_assert!(p.resident() <= cap);
        }
        for (i, &page) in pages.iter().enumerate() {
            prop_assert_eq!(p.read(page, |b| b[7]), model[i]);
        }
    }

    #[test]
    fn any_single_bit_flip_of_a_sealed_page_is_detected(
        data in proptest::collection::vec(any::<u8>(), PAGE_DATA..PAGE_DATA + 1),
        pos in 0usize..PAGE_SIZE * 8,
    ) {
        // Arbitrary page contents (including all-zero data: the sealed
        // trailer is then nonzero, so the fresh-page exemption cannot
        // mask the flip), arbitrary bit anywhere in the page — data or
        // checksum trailer alike.
        let mut page = zeroed_page();
        page[..PAGE_DATA].copy_from_slice(&data);
        seal_page(&mut page);
        page[pos / 8] ^= 1 << (pos % 8);
        prop_assert!(verify_page(3, &page).is_err(), "flip at bit {pos} undetected");
    }

    #[test]
    fn cold_reads_equal_distinct_pages_touched(
        slots in proptest::collection::vec(0u8..16, 1..100),
    ) {
        let p = pool(64);
        let pages: Vec<_> = (0..16).map(|_| p.allocate()).collect();
        p.flush_all();
        p.reset_stats();
        let mut distinct = std::collections::HashSet::new();
        for s in &slots {
            p.read(pages[*s as usize], |_| ());
            distinct.insert(*s);
        }
        prop_assert_eq!(p.stats().reads, distinct.len() as u64);
    }
}

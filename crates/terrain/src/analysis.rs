//! Standard GIS derivatives of a heightfield: slope, aspect, hillshade
//! and roughness. Used by the `terrain_analysis` example and handy for
//! sanity-checking synthetic DEMs against real-terrain expectations.

use crate::heightfield::Heightfield;

/// Central-difference surface gradient `(dz/dx, dz/dy)` at a grid sample
/// (one-sided at borders).
pub fn gradient(hf: &Heightfield, col: usize, row: usize) -> (f64, f64) {
    let w = hf.width();
    let h = hf.height();
    let cell = hf.cell();
    let (c0, c1) = (col.saturating_sub(1), (col + 1).min(w - 1));
    let (r0, r1) = (row.saturating_sub(1), (row + 1).min(h - 1));
    let dx = (hf.at(c1, row) - hf.at(c0, row)) / ((c1 - c0) as f64 * cell);
    let dy = (hf.at(col, r1) - hf.at(col, r0)) / ((r1 - r0) as f64 * cell);
    (dx, dy)
}

/// Slope angle in radians (0 = flat, π/2 = vertical).
pub fn slope(hf: &Heightfield, col: usize, row: usize) -> f64 {
    let (dx, dy) = gradient(hf, col, row);
    (dx * dx + dy * dy).sqrt().atan()
}

/// Aspect (downslope direction) in radians, measured counter-clockwise
/// from +x. `None` on flat ground.
pub fn aspect(hf: &Heightfield, col: usize, row: usize) -> Option<f64> {
    let (dx, dy) = gradient(hf, col, row);
    if dx.abs() < 1e-12 && dy.abs() < 1e-12 {
        None
    } else {
        Some((-dy).atan2(-dx))
    }
}

/// Lambertian hillshade in `[0, 1]` for a light direction given by
/// `azimuth` (radians CCW from +x) and `altitude` (radians above the
/// horizon) — the classic cartographic relief shading.
pub fn hillshade(hf: &Heightfield, col: usize, row: usize, azimuth: f64, altitude: f64) -> f64 {
    let (dx, dy) = gradient(hf, col, row);
    // Surface normal (unnormalized): (-dx, -dy, 1).
    let nx = -dx;
    let ny = -dy;
    let nz = 1.0;
    let nl = (nx * nx + ny * ny + nz * nz).sqrt();
    // Light vector.
    let lx = azimuth.cos() * altitude.cos();
    let ly = azimuth.sin() * altitude.cos();
    let lz = altitude.sin();
    ((nx * lx + ny * ly + nz * lz) / nl).clamp(0.0, 1.0)
}

/// Summary statistics of a heightfield region.
#[derive(Clone, Copy, Debug, Default)]
pub struct TerrainStats {
    pub min_z: f64,
    pub max_z: f64,
    pub mean_z: f64,
    /// Mean slope angle (radians).
    pub mean_slope: f64,
    /// Standard deviation of elevation (a roughness proxy).
    pub roughness: f64,
}

/// Compute [`TerrainStats`] over the whole grid.
pub fn stats(hf: &Heightfield) -> TerrainStats {
    let n = (hf.width() * hf.height()) as f64;
    let mut min_z = f64::INFINITY;
    let mut max_z = f64::NEG_INFINITY;
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let mut slope_sum = 0.0;
    for row in 0..hf.height() {
        for col in 0..hf.width() {
            let z = hf.at(col, row);
            min_z = min_z.min(z);
            max_z = max_z.max(z);
            sum += z;
            sum_sq += z * z;
            slope_sum += slope(hf, col, row);
        }
    }
    let mean = sum / n;
    TerrainStats {
        min_z,
        max_z,
        mean_z: mean,
        mean_slope: slope_sum / n,
        roughness: (sum_sq / n - mean * mean).max(0.0).sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn flat_terrain_derivatives() {
        let hf = Heightfield::flat(8, 8, 1.0, 5.0);
        assert_eq!(gradient(&hf, 4, 4), (0.0, 0.0));
        assert_eq!(slope(&hf, 4, 4), 0.0);
        assert_eq!(aspect(&hf, 4, 4), None);
        // Flat ground under a 45° light: shade = sin(45°).
        let s = hillshade(&hf, 4, 4, 0.0, std::f64::consts::FRAC_PI_4);
        assert!((s - std::f64::consts::FRAC_PI_4.sin()).abs() < 1e-12);
    }

    #[test]
    fn ramp_gradient_and_aspect() {
        let hf = generate::ramp(16, 16, 2.0); // z = 2x
        let (dx, dy) = gradient(&hf, 8, 8);
        assert!((dx - 2.0).abs() < 1e-12);
        assert!(dy.abs() < 1e-12);
        assert!((slope(&hf, 8, 8) - 2.0f64.atan()).abs() < 1e-12);
        // Downslope points toward -x (π).
        let a = aspect(&hf, 8, 8).unwrap();
        assert!((a.abs() - std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn hillshade_favors_lit_slopes() {
        let hf = generate::ramp(16, 16, 1.0);
        // Light from +x at low altitude: the slope faces away (normal
        // points toward -x), so it is darker than under light from -x.
        let from_plus_x = hillshade(&hf, 8, 8, 0.0, 0.3);
        let from_minus_x = hillshade(&hf, 8, 8, std::f64::consts::PI, 0.3);
        assert!(from_minus_x > from_plus_x);
    }

    #[test]
    fn stats_on_known_surface() {
        let hf = generate::ramp(11, 11, 1.0); // z = x ∈ [0, 10]
        let s = stats(&hf);
        assert_eq!(s.min_z, 0.0);
        assert_eq!(s.max_z, 10.0);
        assert!((s.mean_z - 5.0).abs() < 1e-12);
        assert!((s.mean_slope - 1.0f64.atan()).abs() < 1e-12);
        assert!(s.roughness > 0.0);
    }

    #[test]
    fn crater_is_rougher_than_ramp() {
        let crater = stats(&generate::crater_terrain(65, 65, 3));
        let ramp = stats(&generate::ramp(65, 65, 0.1));
        assert!(crater.mean_slope > ramp.mean_slope);
        assert!(crater.roughness > ramp.roughness);
    }
}

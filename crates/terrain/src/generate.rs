//! Synthetic DEM generators.
//!
//! These replace the paper's two real datasets (see DESIGN.md §2):
//!
//! * [`fractal_terrain`] — diamond-square fractal relief standing in for
//!   the 2M-point mining DEM,
//! * [`crater_terrain`] — a caldera (rim ring + interior lake) on top of
//!   damped fractal relief, standing in for the 17M-point USGS Crater
//!   Lake model,
//! * [`ramp`] — a deterministic inclined plane used by tests, because its
//!   simplification behaviour is analytically predictable.
//!
//! All generators are deterministic in their seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::heightfield::Heightfield;
use dm_geom::Vec2;

/// Classic diamond-square (plasma fractal) on a `(2^n + 1)²` grid.
///
/// `roughness` in `(0, 1]` controls how fast the perturbation amplitude
/// decays per subdivision level; larger values give craggier terrain.
pub fn diamond_square(n: u32, seed: u64, roughness: f64) -> Heightfield {
    assert!(
        (1..=13).contains(&n),
        "diamond_square size exponent out of range"
    );
    assert!(roughness > 0.0 && roughness <= 1.0);
    let size = (1usize << n) + 1;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hf = Heightfield::flat(size, size, 1.0, 0.0);

    let mut amp = size as f64 / 4.0;
    // Random corners.
    for &(c, r) in &[(0, 0), (size - 1, 0), (0, size - 1), (size - 1, size - 1)] {
        let z = rng.random_range(-amp..amp);
        hf.set(c, r, z);
    }

    let mut step = size - 1;
    while step > 1 {
        let half = step / 2;
        // Diamond step: centres of squares.
        for row in (half..size).step_by(step) {
            for col in (half..size).step_by(step) {
                let avg = (hf.at(col - half, row - half)
                    + hf.at(col + half, row - half)
                    + hf.at(col - half, row + half)
                    + hf.at(col + half, row + half))
                    / 4.0;
                hf.set(col, row, avg + rng.random_range(-amp..amp));
            }
        }
        // Square step: edge midpoints.
        for row in (0..size).step_by(half) {
            let col_start = if (row / half) % 2 == 0 { half } else { 0 };
            for col in (col_start..size).step_by(step) {
                let mut sum = 0.0;
                let mut cnt = 0.0;
                if col >= half {
                    sum += hf.at(col - half, row);
                    cnt += 1.0;
                }
                if col + half < size {
                    sum += hf.at(col + half, row);
                    cnt += 1.0;
                }
                if row >= half {
                    sum += hf.at(col, row - half);
                    cnt += 1.0;
                }
                if row + half < size {
                    sum += hf.at(col, row + half);
                    cnt += 1.0;
                }
                hf.set(col, row, sum / cnt + rng.random_range(-amp..amp));
            }
        }
        amp *= roughness;
        step = half;
    }
    hf
}

fn pow2_exp_covering(width: usize, height: usize) -> u32 {
    let need = width.max(height).saturating_sub(1).max(1);
    let mut n = 1;
    while (1usize << n) < need {
        n += 1;
    }
    n as u32
}

/// Fractal relief with a few broad hills — the stand-in for the paper's
/// 2M-point mining DEM.
pub fn fractal_terrain(width: usize, height: usize, seed: u64) -> Heightfield {
    let n = pow2_exp_covering(width, height);
    let mut hf = diamond_square(n, seed, 0.55).crop(width, height);
    // Superimpose a handful of broad Gaussian hills so the terrain has
    // macro structure in addition to fractal noise.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let ext = Vec2::new((width - 1) as f64, (height - 1) as f64);
    let hills: Vec<(f64, f64, f64, f64)> = (0..6)
        .map(|_| {
            (
                rng.random_range(0.0..ext.x),
                rng.random_range(0.0..ext.y),
                rng.random_range(ext.x / 10.0..ext.x / 3.0), // radius
                rng.random_range(-0.15..0.3) * ext.x,        // amplitude
            )
        })
        .collect();
    for row in 0..height {
        for col in 0..width {
            let mut z = hf.at(col, row);
            for &(cx, cy, r, a) in &hills {
                let d2 = ((col as f64 - cx).powi(2) + (row as f64 - cy).powi(2)) / (r * r);
                z += a * (-d2).exp();
            }
            hf.set(col, row, z);
        }
    }
    hf
}

/// A volcanic caldera: raised rim ring, inner depression with a flat lake
/// — the stand-in for the USGS Crater Lake DEM.
pub fn crater_terrain(width: usize, height: usize, seed: u64) -> Heightfield {
    let n = pow2_exp_covering(width, height);
    let mut hf = diamond_square(n, seed, 0.55).crop(width, height);
    let ext = (width.min(height) - 1) as f64;
    let cx = (width - 1) as f64 / 2.0;
    let cy = (height - 1) as f64 / 2.0;
    let rim_r = ext * 0.30;
    let rim_w = ext * 0.07;
    let rim_h = ext * 0.25;
    let depth = ext * 0.18;
    let lake_z = -depth * 0.35;
    for row in 0..height {
        for col in 0..width {
            let r = ((col as f64 - cx).powi(2) + (row as f64 - cy).powi(2)).sqrt();
            // Keep near-full fractal amplitude: real DEMs are rough at the
            // sample scale everywhere except the water surface, and a too
            // smooth surface degenerates the LOD distribution.
            let mut z = hf.at(col, row) * 0.8;
            // Rim: Gaussian ring.
            z += rim_h * (-(r - rim_r).powi(2) / (2.0 * rim_w * rim_w)).exp();
            // Depression inside the rim (smoothstep to the crater floor).
            if r < rim_r {
                let t = (r / rim_r).clamp(0.0, 1.0);
                let s = t * t * (3.0 - 2.0 * t);
                z -= depth * (1.0 - s);
            }
            // The lake: flat water surface.
            if r < rim_r * 0.8 && z < lake_z {
                z = lake_z;
            }
            hf.set(col, row, z);
        }
    }
    hf
}

/// A deterministic inclined plane `z = slope · x`. Every interior point is
/// perfectly predicted by its neighbours, so a simplifier should reduce it
/// with near-zero error — handy for tests.
pub fn ramp(width: usize, height: usize, slope: f64) -> Heightfield {
    Heightfield::from_fn(width, height, 1.0, |x, _| slope * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diamond_square_shape() {
        let hf = diamond_square(4, 7, 0.5);
        assert_eq!(hf.width(), 17);
        assert_eq!(hf.height(), 17);
        let (lo, hi) = hf.z_range();
        assert!(lo < hi, "fractal terrain must not be flat");
    }

    #[test]
    fn generators_are_deterministic() {
        let a = fractal_terrain(33, 33, 42);
        let b = fractal_terrain(33, 33, 42);
        assert_eq!(a.rmse(&b), 0.0);
        let c = crater_terrain(33, 33, 42);
        let d = crater_terrain(33, 33, 42);
        assert_eq!(c.rmse(&d), 0.0);
    }

    #[test]
    fn different_seeds_differ() {
        let a = fractal_terrain(33, 33, 1);
        let b = fractal_terrain(33, 33, 2);
        assert!(a.rmse(&b) > 0.0);
    }

    #[test]
    fn non_square_sizes_work() {
        let hf = fractal_terrain(40, 25, 3);
        assert_eq!((hf.width(), hf.height()), (40, 25));
        let hf = crater_terrain(25, 40, 3);
        assert_eq!((hf.width(), hf.height()), (25, 40));
    }

    #[test]
    fn crater_has_rim_above_center() {
        let hf = crater_terrain(65, 65, 9);
        let center = hf.at(32, 32);
        // Max along the rim radius ring must rise well above the centre.
        let ext = 64.0;
        let rim_r = (ext * 0.30) as isize;
        let mut rim_max = f64::NEG_INFINITY;
        for a in 0..360 {
            let th = (a as f64).to_radians();
            let c = (32.0 + rim_r as f64 * th.cos()).round() as usize;
            let r = (32.0 + rim_r as f64 * th.sin()).round() as usize;
            if c < 65 && r < 65 {
                rim_max = rim_max.max(hf.at(c, r));
            }
        }
        assert!(
            rim_max > center + ext * 0.1,
            "rim {rim_max:.1} should tower over centre {center:.1}"
        );
    }

    #[test]
    fn crater_lake_is_flat() {
        let hf = crater_terrain(129, 129, 5);
        // Sample a small disc at the centre: all values equal (the lake).
        let c = hf.at(64, 64);
        for (dc, dr) in [(1isize, 0isize), (-1, 0), (0, 1), (0, -1), (2, 2), (-3, 1)] {
            let v = hf.at((64 + dc) as usize, (64 + dr) as usize);
            assert_eq!(v, c, "lake surface must be flat");
        }
    }

    #[test]
    fn ramp_is_linear() {
        let hf = ramp(10, 5, 2.0);
        assert_eq!(hf.at(0, 0), 0.0);
        assert_eq!(hf.at(9, 4), 18.0);
        assert_eq!(hf.at(4, 2), 8.0);
    }
}

//! Regular-grid digital elevation models.

use dm_geom::{Rect, Vec2, Vec3};

/// A regular grid of elevation samples.
///
/// Sample `(col, row)` sits at world position
/// `(origin.x + col * cell, origin.y + row * cell)`.
#[derive(Clone, Debug)]
pub struct Heightfield {
    width: usize,
    height: usize,
    cell: f64,
    origin: Vec2,
    data: Vec<f64>,
}

impl Heightfield {
    /// Create from raw samples (row-major, `width * height` values).
    pub fn from_data(width: usize, height: usize, cell: f64, origin: Vec2, data: Vec<f64>) -> Self {
        assert!(
            width >= 2 && height >= 2,
            "heightfield must be at least 2×2"
        );
        assert_eq!(data.len(), width * height, "sample count mismatch");
        assert!(cell > 0.0, "cell size must be positive");
        Heightfield {
            width,
            height,
            cell,
            origin,
            data,
        }
    }

    /// A flat heightfield of constant elevation.
    pub fn flat(width: usize, height: usize, cell: f64, z: f64) -> Self {
        Self::from_data(width, height, cell, Vec2::ZERO, vec![z; width * height])
    }

    /// Build by evaluating `f(world_x, world_y)` at every sample.
    pub fn from_fn(
        width: usize,
        height: usize,
        cell: f64,
        mut f: impl FnMut(f64, f64) -> f64,
    ) -> Self {
        let mut data = Vec::with_capacity(width * height);
        for row in 0..height {
            for col in 0..width {
                data.push(f(col as f64 * cell, row as f64 * cell));
            }
        }
        Self::from_data(width, height, cell, Vec2::ZERO, data)
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn height(&self) -> usize {
        self.height
    }

    pub fn cell(&self) -> f64 {
        self.cell
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        false // construction requires ≥ 2×2
    }

    /// Elevation at grid coordinates.
    #[inline]
    pub fn at(&self, col: usize, row: usize) -> f64 {
        debug_assert!(col < self.width && row < self.height);
        self.data[row * self.width + col]
    }

    #[inline]
    pub fn set(&mut self, col: usize, row: usize, z: f64) {
        debug_assert!(col < self.width && row < self.height);
        self.data[row * self.width + col] = z;
    }

    /// World-space position of a grid sample.
    #[inline]
    pub fn world(&self, col: usize, row: usize) -> Vec3 {
        Vec3::new(
            self.origin.x + col as f64 * self.cell,
            self.origin.y + row as f64 * self.cell,
            self.at(col, row),
        )
    }

    /// World-space bounding rectangle of the grid.
    pub fn bounds(&self) -> Rect {
        Rect::new(
            self.origin,
            Vec2::new(
                self.origin.x + (self.width - 1) as f64 * self.cell,
                self.origin.y + (self.height - 1) as f64 * self.cell,
            ),
        )
    }

    /// Bilinear elevation sample at a world position (clamped to bounds).
    pub fn sample(&self, x: f64, y: f64) -> f64 {
        let fx = ((x - self.origin.x) / self.cell).clamp(0.0, (self.width - 1) as f64);
        let fy = ((y - self.origin.y) / self.cell).clamp(0.0, (self.height - 1) as f64);
        let c0 = fx.floor() as usize;
        let r0 = fy.floor() as usize;
        let c1 = (c0 + 1).min(self.width - 1);
        let r1 = (r0 + 1).min(self.height - 1);
        let tx = fx - c0 as f64;
        let ty = fy - r0 as f64;
        let a = self.at(c0, r0) * (1.0 - tx) + self.at(c1, r0) * tx;
        let b = self.at(c0, r1) * (1.0 - tx) + self.at(c1, r1) * tx;
        a * (1.0 - ty) + b * ty
    }

    /// `(min, max)` elevation.
    pub fn z_range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &z in &self.data {
            lo = lo.min(z);
            hi = hi.max(z);
        }
        (lo, hi)
    }

    /// Crop the top-left `width × height` sub-grid (used to trim
    /// power-of-two-plus-one fractal grids to a requested size).
    pub fn crop(&self, width: usize, height: usize) -> Heightfield {
        assert!(width <= self.width && height <= self.height);
        let mut data = Vec::with_capacity(width * height);
        for row in 0..height {
            for col in 0..width {
                data.push(self.at(col, row));
            }
        }
        Heightfield::from_data(width, height, self.cell, self.origin, data)
    }

    /// Root-mean-square of the elevation differences against another
    /// heightfield of identical shape.
    pub fn rmse(&self, other: &Heightfield) -> f64 {
        assert_eq!((self.width, self.height), (other.width, other.height));
        let sum: f64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        (sum / self.data.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let hf = Heightfield::from_fn(4, 3, 2.0, |x, y| x + 10.0 * y);
        assert_eq!(hf.width(), 4);
        assert_eq!(hf.height(), 3);
        assert_eq!(hf.len(), 12);
        assert_eq!(hf.at(0, 0), 0.0);
        assert_eq!(hf.at(3, 0), 6.0);
        assert_eq!(hf.at(0, 2), 40.0);
        assert_eq!(hf.world(2, 1), Vec3::new(4.0, 2.0, 4.0 + 20.0));
    }

    #[test]
    fn bounds_cover_grid() {
        let hf = Heightfield::flat(5, 4, 1.5, 0.0);
        let b = hf.bounds();
        assert_eq!(b.min, Vec2::ZERO);
        assert_eq!(b.max, Vec2::new(6.0, 4.5));
    }

    #[test]
    fn bilinear_sampling_interpolates() {
        let hf = Heightfield::from_fn(3, 3, 1.0, |x, y| x + y);
        // A plane is reproduced exactly by bilinear interpolation.
        assert!((hf.sample(0.5, 0.5) - 1.0).abs() < 1e-12);
        assert!((hf.sample(1.25, 0.75) - 2.0).abs() < 1e-12);
        // Clamping outside the grid.
        assert!((hf.sample(-5.0, -5.0) - 0.0).abs() < 1e-12);
        assert!((hf.sample(99.0, 99.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn z_range() {
        let hf = Heightfield::from_fn(4, 4, 1.0, |x, y| x - y);
        assert_eq!(hf.z_range(), (-3.0, 3.0));
    }

    #[test]
    fn crop_preserves_samples() {
        let hf = Heightfield::from_fn(8, 8, 1.0, |x, y| x * 100.0 + y);
        let c = hf.crop(3, 5);
        assert_eq!(c.width(), 3);
        assert_eq!(c.height(), 5);
        for row in 0..5 {
            for col in 0..3 {
                assert_eq!(c.at(col, row), hf.at(col, row));
            }
        }
    }

    #[test]
    fn rmse_of_identical_is_zero() {
        let hf = Heightfield::from_fn(6, 6, 1.0, |x, y| (x * y).sin());
        assert_eq!(hf.rmse(&hf), 0.0);
        let flat = Heightfield::flat(6, 6, 1.0, 0.0);
        let two = Heightfield::flat(6, 6, 1.0, 2.0);
        assert!((flat.rmse(&two) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 2×2")]
    fn rejects_degenerate_grid() {
        Heightfield::flat(1, 5, 1.0, 0.0);
    }
}

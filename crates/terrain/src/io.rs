//! Heightfield file I/O.
//!
//! Two formats:
//!
//! * **ESRI ASCII grid** (`.asc`) — the interchange format USGS DEMs (the
//!   paper's Crater Lake dataset) are commonly distributed in. Header
//!   keys `ncols`, `nrows`, `xllcorner`, `yllcorner`, `cellsize`,
//!   optional `nodata_value`; rows listed north to south.
//! * **DMH** — a tiny little-endian binary format (`DMHF` magic, u32
//!   dims, f64 cell/origin, f64 samples) for fast save/load of generated
//!   terrains.

use std::io::{self, BufRead, BufWriter, Read, Write};

use dm_geom::Vec2;

use crate::heightfield::Heightfield;

/// Magic bytes of the binary heightfield format.
const DMH_MAGIC: &[u8; 4] = b"DMHF";

/// Parse an ESRI ASCII grid.
///
/// `nodata` cells are filled with the minimum valid elevation (terrain
/// meshes need a value everywhere; callers with real holes should
/// preprocess). Rows are north-to-south in the file and flipped into this
/// crate's south-to-north order.
pub fn read_esri_ascii(reader: impl Read) -> io::Result<Heightfield> {
    let mut lines = io::BufReader::new(reader).lines();
    let mut header = std::collections::HashMap::new();
    let mut first_data_line: Option<String> = None;
    for line in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        let mut parts = t.split_whitespace();
        let key = parts.next().unwrap_or("").to_ascii_lowercase();
        if key.chars().next().is_some_and(|c| c.is_ascii_alphabetic()) {
            let val: f64 = parts
                .next()
                .ok_or_else(|| bad_data(format!("header key {key} without value")))?
                .parse()
                .map_err(|e| bad_data(format!("bad header value for {key}: {e}")))?;
            header.insert(key, val);
        } else {
            first_data_line = Some(line);
            break;
        }
    }
    let need = |k: &str| -> io::Result<f64> {
        header
            .get(k)
            .copied()
            .ok_or_else(|| bad_data(format!("missing header key {k}")))
    };
    let ncols = need("ncols")? as usize;
    let nrows = need("nrows")? as usize;
    if ncols < 2 || nrows < 2 {
        return Err(bad_data(format!("grid too small: {ncols}×{nrows}")));
    }
    let cell = need("cellsize")?;
    let x0 = header.get("xllcorner").copied().unwrap_or(0.0);
    let y0 = header.get("yllcorner").copied().unwrap_or(0.0);
    let nodata = header.get("nodata_value").copied();

    let mut values: Vec<f64> = Vec::with_capacity(ncols * nrows);
    let mut push_line = |line: &str| -> io::Result<()> {
        for tok in line.split_whitespace() {
            let v: f64 = tok
                .parse()
                .map_err(|e| bad_data(format!("bad sample {tok:?}: {e}")))?;
            values.push(v);
        }
        Ok(())
    };
    if let Some(l) = first_data_line {
        push_line(&l)?;
    }
    for line in lines {
        push_line(&line?)?;
    }
    if values.len() != ncols * nrows {
        return Err(bad_data(format!(
            "expected {} samples, found {}",
            ncols * nrows,
            values.len()
        )));
    }
    // Replace nodata with the minimum valid sample.
    if let Some(nd) = nodata {
        let min_valid = values
            .iter()
            .copied()
            .filter(|&v| v != nd)
            .fold(f64::INFINITY, f64::min);
        let fill = if min_valid.is_finite() {
            min_valid
        } else {
            0.0
        };
        for v in &mut values {
            if *v == nd {
                *v = fill;
            }
        }
    }
    // File rows run north→south; flip to row 0 = south.
    let mut data = vec![0.0f64; ncols * nrows];
    for (file_row, chunk) in values.chunks(ncols).enumerate() {
        let row = nrows - 1 - file_row;
        data[row * ncols..(row + 1) * ncols].copy_from_slice(chunk);
    }
    Ok(Heightfield::from_data(
        ncols,
        nrows,
        cell,
        Vec2::new(x0, y0),
        data,
    ))
}

/// Write an ESRI ASCII grid.
pub fn write_esri_ascii(hf: &Heightfield, writer: impl Write) -> io::Result<()> {
    let mut out = BufWriter::new(writer);
    let b = hf.bounds();
    writeln!(out, "ncols {}", hf.width())?;
    writeln!(out, "nrows {}", hf.height())?;
    writeln!(out, "xllcorner {}", b.min.x)?;
    writeln!(out, "yllcorner {}", b.min.y)?;
    writeln!(out, "cellsize {}", hf.cell())?;
    for row in (0..hf.height()).rev() {
        let mut first = true;
        for col in 0..hf.width() {
            if !first {
                write!(out, " ")?;
            }
            write!(out, "{}", hf.at(col, row))?;
            first = false;
        }
        writeln!(out)?;
    }
    out.flush()
}

/// Write the binary DMH format.
pub fn write_dmh(hf: &Heightfield, writer: impl Write) -> io::Result<()> {
    let mut out = BufWriter::new(writer);
    out.write_all(DMH_MAGIC)?;
    out.write_all(&(hf.width() as u32).to_le_bytes())?;
    out.write_all(&(hf.height() as u32).to_le_bytes())?;
    out.write_all(&hf.cell().to_le_bytes())?;
    let b = hf.bounds();
    out.write_all(&b.min.x.to_le_bytes())?;
    out.write_all(&b.min.y.to_le_bytes())?;
    for row in 0..hf.height() {
        for col in 0..hf.width() {
            out.write_all(&hf.at(col, row).to_le_bytes())?;
        }
    }
    out.flush()
}

/// Read the binary DMH format.
pub fn read_dmh(mut reader: impl Read) -> io::Result<Heightfield> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != DMH_MAGIC {
        return Err(bad_data("not a DMH file (bad magic)".to_string()));
    }
    let mut u32buf = [0u8; 4];
    let mut f64buf = [0u8; 8];
    reader.read_exact(&mut u32buf)?;
    let width = u32::from_le_bytes(u32buf) as usize;
    reader.read_exact(&mut u32buf)?;
    let height = u32::from_le_bytes(u32buf) as usize;
    if width < 2 || height < 2 || width.saturating_mul(height) > (1 << 30) {
        return Err(bad_data(format!(
            "implausible DMH dimensions {width}×{height}"
        )));
    }
    reader.read_exact(&mut f64buf)?;
    let cell = f64::from_le_bytes(f64buf);
    reader.read_exact(&mut f64buf)?;
    let x0 = f64::from_le_bytes(f64buf);
    reader.read_exact(&mut f64buf)?;
    let y0 = f64::from_le_bytes(f64buf);
    let mut data = Vec::with_capacity(width * height);
    for _ in 0..width * height {
        reader.read_exact(&mut f64buf)?;
        data.push(f64::from_le_bytes(f64buf));
    }
    Ok(Heightfield::from_data(
        width,
        height,
        cell,
        Vec2::new(x0, y0),
        data,
    ))
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn esri_roundtrip() {
        let hf = generate::fractal_terrain(17, 13, 3);
        let mut buf = Vec::new();
        write_esri_ascii(&hf, &mut buf).unwrap();
        let back = read_esri_ascii(&buf[..]).unwrap();
        assert_eq!(back.width(), 17);
        assert_eq!(back.height(), 13);
        assert!(hf.rmse(&back) < 1e-9);
        assert_eq!(hf.bounds().min, back.bounds().min);
    }

    #[test]
    fn esri_parses_reference_document() {
        let text = "\
ncols 3
nrows 2
xllcorner 100.0
yllcorner 200.0
cellsize 10.0
NODATA_value -9999
1 2 3
4 -9999 6
";
        let hf = read_esri_ascii(text.as_bytes()).unwrap();
        assert_eq!((hf.width(), hf.height()), (3, 2));
        // File top row (1 2 3) is the NORTH row = our row 1.
        assert_eq!(hf.at(0, 1), 1.0);
        assert_eq!(hf.at(2, 1), 3.0);
        assert_eq!(hf.at(0, 0), 4.0);
        // nodata filled with the minimum valid value.
        assert_eq!(hf.at(1, 0), 1.0);
        assert_eq!(hf.bounds().min, Vec2::new(100.0, 200.0));
        assert_eq!(hf.cell(), 10.0);
    }

    #[test]
    fn esri_rejects_garbage() {
        assert!(read_esri_ascii("ncols x\n".as_bytes()).is_err());
        assert!(read_esri_ascii("ncols 3\nnrows 2\n1 2 3\n".as_bytes()).is_err()); // no cellsize
        let short = "ncols 3\nnrows 2\ncellsize 1\n1 2 3\n";
        assert!(read_esri_ascii(short.as_bytes()).is_err()); // missing samples
    }

    #[test]
    fn dmh_roundtrip() {
        let hf = generate::crater_terrain(21, 34, 9);
        let mut buf = Vec::new();
        write_dmh(&hf, &mut buf).unwrap();
        let back = read_dmh(&buf[..]).unwrap();
        assert_eq!((back.width(), back.height()), (21, 34));
        assert_eq!(hf.rmse(&back), 0.0, "binary roundtrip is exact");
    }

    #[test]
    fn dmh_rejects_bad_magic() {
        assert!(read_dmh(&b"NOPE1234"[..]).is_err());
    }

    #[test]
    fn dmh_rejects_truncation() {
        let hf = generate::ramp(5, 5, 1.0);
        let mut buf = Vec::new();
        write_dmh(&hf, &mut buf).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(read_dmh(&buf[..]).is_err());
    }
}

//! Terrain data: synthetic DEMs, heightfield grids and triangle meshes.
//!
//! The paper evaluates on two real DEMs (a 2M-point proprietary mining
//! dataset and the 17M-point USGS "Crater Lake National Park" model).
//! Neither is available, so [`generate`] provides synthetic stand-ins with
//! the same statistical character: fractal relief (uniform point density
//! in `(x, y)`, heavily skewed detail distribution) and a crater generator
//! mimicking Crater Lake's rim/caldera/lake structure. See DESIGN.md §2
//! for the substitution argument.
//!
//! [`mesh::TriMesh`] is the editable triangulation used during
//! simplification: it supports the full-edge collapse that Progressive
//! Mesh construction performs, reports *wing* vertices (the two vertices
//! adjacent to both endpoints of the collapsed edge — the paper's `wing1`/
//! `wing2` fields), and validates manifoldness.

pub mod analysis;
pub mod generate;
pub mod heightfield;
pub mod io;
pub mod mesh;
pub mod metrics;
pub mod obj;

pub use heightfield::Heightfield;
pub use mesh::{CollapseError, CollapseResult, TriMesh};

//! An editable triangle mesh supporting the full-edge collapse used by
//! Progressive Mesh construction.
//!
//! The mesh is a *terrain*: its projection to the `(x, y)` plane is a
//! planar triangulation with consistently counter-clockwise faces. Edge
//! collapses preserve that invariant (fold-over rejection), which later
//! lets Direct Mesh reconstruct faces from adjacency alone by angular
//! sorting.

use dm_geom::tri::orient2d;
use dm_geom::Vec3;

use crate::heightfield::Heightfield;

/// Sentinel vertex/triangle id.
pub const NIL: u32 = u32::MAX;

/// Why an edge collapse was refused. The mesh is unchanged in every case.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollapseError {
    /// One endpoint is dead or the ids are equal.
    BadVertices,
    /// The vertices are not connected by an edge.
    NotAnEdge,
    /// The edge is shared by more than two triangles.
    NonManifold,
    /// Extra common neighbours beyond the wing vertices (collapsing would
    /// glue the surface to itself).
    LinkCondition,
    /// A surviving triangle would flip or degenerate in plan view.
    Foldover,
    /// A wing vertex would lose every incident triangle.
    WouldOrphanWing,
    /// Both endpoints are boundary vertices but the edge is interior.
    BoundaryViolation,
}

/// Outcome of a successful collapse.
#[derive(Clone, Debug)]
pub struct CollapseResult {
    /// Id of the newly created vertex.
    pub new_vertex: u32,
    /// Wing vertices: third corners of the triangles that shared the
    /// collapsed edge (2 for an interior edge, 1 on the boundary). These
    /// are the paper's `wing1`/`wing2` fields.
    pub wings: Vec<u32>,
    /// Triangles removed by the collapse.
    pub removed_tris: Vec<u32>,
    /// Triangles whose corner was redirected to the new vertex.
    pub retargeted_tris: Vec<u32>,
}

/// Editable triangle mesh with vertex→triangle incidence.
#[derive(Clone, Debug, Default)]
pub struct TriMesh {
    positions: Vec<Vec3>,
    vert_alive: Vec<bool>,
    tris: Vec<[u32; 3]>,
    tri_alive: Vec<bool>,
    vert_tris: Vec<Vec<u32>>,
    live_verts: usize,
    live_tris: usize,
}

impl TriMesh {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from raw parts (used by tests and by the reconstruction
    /// validators). Triangle indices must be in range.
    pub fn from_parts(positions: Vec<Vec3>, triangles: &[[u32; 3]]) -> Self {
        let mut mesh = TriMesh::new();
        for p in positions {
            mesh.add_vertex(p);
        }
        for &t in triangles {
            mesh.add_triangle(t);
        }
        mesh
    }

    /// Triangulate a heightfield grid. Cell diagonals alternate with cell
    /// parity to avoid directional bias; all faces are CCW in plan view.
    pub fn from_heightfield(hf: &Heightfield) -> Self {
        let w = hf.width();
        let h = hf.height();
        let mut mesh = TriMesh::new();
        mesh.positions.reserve(w * h);
        for row in 0..h {
            for col in 0..w {
                mesh.add_vertex(hf.world(col, row));
            }
        }
        let id = |col: usize, row: usize| (row * w + col) as u32;
        mesh.tris.reserve((w - 1) * (h - 1) * 2);
        for row in 0..h - 1 {
            for col in 0..w - 1 {
                let v00 = id(col, row);
                let v10 = id(col + 1, row);
                let v01 = id(col, row + 1);
                let v11 = id(col + 1, row + 1);
                if (col + row) % 2 == 0 {
                    mesh.add_triangle([v00, v10, v11]);
                    mesh.add_triangle([v00, v11, v01]);
                } else {
                    mesh.add_triangle([v10, v11, v01]);
                    mesh.add_triangle([v10, v01, v00]);
                }
            }
        }
        mesh
    }

    pub fn add_vertex(&mut self, p: Vec3) -> u32 {
        let id = self.positions.len() as u32;
        self.positions.push(p);
        self.vert_alive.push(true);
        self.vert_tris.push(Vec::new());
        self.live_verts += 1;
        id
    }

    pub fn add_triangle(&mut self, t: [u32; 3]) -> u32 {
        assert!(
            t[0] != t[1] && t[1] != t[2] && t[0] != t[2],
            "degenerate triangle {t:?}"
        );
        for &v in &t {
            assert!(self.is_vertex_alive(v), "dead vertex {v} in triangle");
        }
        let id = self.tris.len() as u32;
        self.tris.push(t);
        self.tri_alive.push(true);
        for &v in &t {
            self.vert_tris[v as usize].push(id);
        }
        self.live_tris += 1;
        id
    }

    #[inline]
    pub fn position(&self, v: u32) -> Vec3 {
        self.positions[v as usize]
    }

    #[inline]
    pub fn is_vertex_alive(&self, v: u32) -> bool {
        (v as usize) < self.vert_alive.len() && self.vert_alive[v as usize]
    }

    #[inline]
    pub fn is_tri_alive(&self, t: u32) -> bool {
        (t as usize) < self.tri_alive.len() && self.tri_alive[t as usize]
    }

    #[inline]
    pub fn triangle(&self, t: u32) -> [u32; 3] {
        self.tris[t as usize]
    }

    pub fn num_live_vertices(&self) -> usize {
        self.live_verts
    }

    pub fn num_live_triangles(&self) -> usize {
        self.live_tris
    }

    /// Total vertex slots ever allocated (dead ones included).
    pub fn vertex_capacity(&self) -> usize {
        self.positions.len()
    }

    /// Iterate live triangle ids.
    pub fn live_triangles(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.tris.len() as u32).filter(move |&t| self.tri_alive[t as usize])
    }

    /// Iterate live vertex ids.
    pub fn live_vertices(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.positions.len() as u32).filter(move |&v| self.vert_alive[v as usize])
    }

    /// Triangles incident to a live vertex.
    pub fn incident_triangles(&self, v: u32) -> &[u32] {
        &self.vert_tris[v as usize]
    }

    /// Unique neighbouring vertex ids of `v` (unordered).
    pub fn neighbors(&self, v: u32) -> Vec<u32> {
        let mut out = Vec::with_capacity(8);
        for &t in &self.vert_tris[v as usize] {
            for &o in &self.tris[t as usize] {
                if o != v && !out.contains(&o) {
                    out.push(o);
                }
            }
        }
        out
    }

    /// True when `u`–`v` is an edge of the mesh.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.vert_tris[u as usize]
            .iter()
            .any(|&t| self.tris[t as usize].contains(&v))
    }

    /// Live triangles containing both `u` and `v`.
    pub fn triangles_with_edge(&self, u: u32, v: u32) -> Vec<u32> {
        self.vert_tris[u as usize]
            .iter()
            .copied()
            .filter(|&t| self.tris[t as usize].contains(&v))
            .collect()
    }

    /// Vertices adjacent to both `u` and `v`.
    pub fn common_neighbors(&self, u: u32, v: u32) -> Vec<u32> {
        let nv = self.neighbors(v);
        self.neighbors(u)
            .into_iter()
            .filter(|n| nv.contains(n))
            .collect()
    }

    /// A vertex is on the boundary when one of its edges borders only one
    /// triangle.
    pub fn is_boundary_vertex(&self, v: u32) -> bool {
        for n in self.neighbors(v) {
            if self.triangles_with_edge(v, n).len() < 2 {
                return true;
            }
        }
        false
    }

    /// Full-edge collapse `(u, v) → w` where `w` is a *new* vertex at
    /// `new_pos`. On error the mesh is untouched.
    pub fn collapse_edge(
        &mut self,
        u: u32,
        v: u32,
        new_pos: Vec3,
    ) -> Result<CollapseResult, CollapseError> {
        if u == v || !self.is_vertex_alive(u) || !self.is_vertex_alive(v) {
            return Err(CollapseError::BadVertices);
        }
        let shared = self.triangles_with_edge(u, v);
        if shared.is_empty() {
            return Err(CollapseError::NotAnEdge);
        }
        if shared.len() > 2 {
            return Err(CollapseError::NonManifold);
        }
        // Wing vertices: third corner of each shared triangle.
        let mut wings = Vec::with_capacity(2);
        for &t in &shared {
            for &o in &self.tris[t as usize] {
                if o != u && o != v {
                    wings.push(o);
                }
            }
        }
        if wings.len() == 2 && wings[0] == wings[1] {
            return Err(CollapseError::NonManifold);
        }
        // Link condition: the only common neighbours are the wings.
        let commons = self.common_neighbors(u, v);
        if commons.len() != wings.len() {
            return Err(CollapseError::LinkCondition);
        }
        // Boundary rule: two boundary endpoints may only collapse along a
        // boundary edge.
        if shared.len() == 2 && self.is_boundary_vertex(u) && self.is_boundary_vertex(v) {
            return Err(CollapseError::BoundaryViolation);
        }
        // Wings must survive with at least one triangle.
        for &wv in &wings {
            let remaining = self.vert_tris[wv as usize]
                .iter()
                .filter(|t| !shared.contains(t))
                .count();
            if remaining == 0 {
                return Err(CollapseError::WouldOrphanWing);
            }
        }
        // Fold-over test on every retargeted triangle.
        let mut retargeted: Vec<u32> = Vec::new();
        for &endpoint in &[u, v] {
            for &t in &self.vert_tris[endpoint as usize] {
                if shared.contains(&t) || retargeted.contains(&t) {
                    continue;
                }
                let tri = self.tris[t as usize];
                let before = orient2d(
                    self.position(tri[0]).xy(),
                    self.position(tri[1]).xy(),
                    self.position(tri[2]).xy(),
                );
                let pos_of = |x: u32| {
                    if x == u || x == v {
                        new_pos
                    } else {
                        self.position(x)
                    }
                };
                let after = orient2d(
                    pos_of(tri[0]).xy(),
                    pos_of(tri[1]).xy(),
                    pos_of(tri[2]).xy(),
                );
                if after.signum() != before.signum() || after.abs() < 1e-12 {
                    return Err(CollapseError::Foldover);
                }
                retargeted.push(t);
            }
        }

        // --- Commit ---
        let w = self.add_vertex(new_pos);
        for &t in &shared {
            self.kill_triangle(t);
        }
        for &t in &retargeted {
            let tri = &mut self.tris[t as usize];
            for corner in tri.iter_mut() {
                if *corner == u || *corner == v {
                    *corner = w;
                }
            }
            self.vert_tris[w as usize].push(t);
        }
        self.kill_vertex(u);
        self.kill_vertex(v);

        Ok(CollapseResult {
            new_vertex: w,
            wings,
            removed_tris: shared,
            retargeted_tris: retargeted,
        })
    }

    fn kill_triangle(&mut self, t: u32) {
        debug_assert!(self.tri_alive[t as usize]);
        self.tri_alive[t as usize] = false;
        self.live_tris -= 1;
        for &v in &self.tris[t as usize] {
            if self.vert_alive[v as usize] {
                self.vert_tris[v as usize].retain(|&x| x != t);
            }
        }
    }

    fn kill_vertex(&mut self, v: u32) {
        debug_assert!(self.vert_alive[v as usize]);
        self.vert_alive[v as usize] = false;
        self.live_verts -= 1;
        self.vert_tris[v as usize] = Vec::new();
    }

    /// Euler characteristic `V − E + F` of the live mesh (counting only
    /// live elements; a topological disc gives 1).
    pub fn euler_characteristic(&self) -> i64 {
        let v = self.live_verts as i64;
        let f = self.live_tris as i64;
        let mut edges = std::collections::HashSet::new();
        for t in self.live_triangles() {
            let tri = self.tris[t as usize];
            for i in 0..3 {
                let a = tri[i].min(tri[(i + 1) % 3]);
                let b = tri[i].max(tri[(i + 1) % 3]);
                edges.insert((a, b));
            }
        }
        v - edges.len() as i64 + f
    }

    /// Structural validation; returns a description of the first problem.
    ///
    /// Checks: live triangles reference distinct live vertices, incidence
    /// lists are exact, every undirected edge borders ≤ 2 triangles, every
    /// directed edge appears at most once (consistent orientation), and
    /// every face is counter-clockwise in plan view.
    pub fn validate(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let mut directed: HashMap<(u32, u32), u32> = HashMap::new();
        let mut undirected: HashMap<(u32, u32), u32> = HashMap::new();
        let mut live_t = 0usize;
        for t in 0..self.tris.len() as u32 {
            if !self.tri_alive[t as usize] {
                continue;
            }
            live_t += 1;
            let tri = self.tris[t as usize];
            if tri[0] == tri[1] || tri[1] == tri[2] || tri[0] == tri[2] {
                return Err(format!("triangle {t} has repeated vertices {tri:?}"));
            }
            for &v in &tri {
                if !self.is_vertex_alive(v) {
                    return Err(format!("triangle {t} references dead vertex {v}"));
                }
                if !self.vert_tris[v as usize].contains(&t) {
                    return Err(format!("incidence list of vertex {v} misses triangle {t}"));
                }
            }
            let area = orient2d(
                self.position(tri[0]).xy(),
                self.position(tri[1]).xy(),
                self.position(tri[2]).xy(),
            );
            if area <= 0.0 {
                return Err(format!(
                    "triangle {t} is not CCW in plan view (2·area = {area})"
                ));
            }
            for i in 0..3 {
                let a = tri[i];
                let b = tri[(i + 1) % 3];
                if directed.insert((a, b), t).is_some() {
                    return Err(format!("directed edge ({a},{b}) used twice"));
                }
                *undirected.entry((a.min(b), a.max(b))).or_insert(0) += 1;
            }
        }
        for (&(a, b), &cnt) in &undirected {
            if cnt > 2 {
                return Err(format!("edge ({a},{b}) borders {cnt} triangles"));
            }
        }
        if live_t != self.live_tris {
            return Err(format!(
                "live_tris counter {} != actual {live_t}",
                self.live_tris
            ));
        }
        let live_v = self.vert_alive.iter().filter(|&&a| a).count();
        if live_v != self.live_verts {
            return Err(format!(
                "live_verts counter {} != actual {live_v}",
                self.live_verts
            ));
        }
        for v in 0..self.positions.len() as u32 {
            for &t in &self.vert_tris[v as usize] {
                if !self.is_tri_alive(t) {
                    return Err(format!("vertex {v} lists dead triangle {t}"));
                }
                if !self.tris[t as usize].contains(&v) {
                    return Err(format!("vertex {v} lists triangle {t} that lacks it"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    fn grid(n: usize) -> TriMesh {
        TriMesh::from_heightfield(&generate::ramp(n, n, 0.5))
    }

    #[test]
    fn heightfield_triangulation_counts() {
        let m = grid(4);
        assert_eq!(m.num_live_vertices(), 16);
        assert_eq!(m.num_live_triangles(), 2 * 3 * 3);
        m.validate().expect("fresh grid is valid");
        assert_eq!(m.euler_characteristic(), 1, "a disc has χ = 1");
    }

    #[test]
    fn neighbors_of_interior_grid_vertex() {
        let m = grid(5);
        // Vertex (2,2) = id 12; a grid interior vertex touches 6 triangles
        // and has 6 neighbours when both diagonals alternate around it.
        let n = m.neighbors(12);
        assert!(
            n.len() >= 4 && n.len() <= 8,
            "valence {} out of range",
            n.len()
        );
        assert!(n.contains(&11) && n.contains(&13) && n.contains(&7) && n.contains(&17));
    }

    #[test]
    fn interior_collapse_succeeds() {
        let mut m = grid(5);
        let u = 12u32; // (2,2)
        let v = 13u32; // (3,2)
        let mid = (m.position(u) + m.position(v)) / 2.0;
        let before_tris = m.num_live_triangles();
        let res = m.collapse_edge(u, v, mid).expect("interior collapse");
        assert_eq!(res.removed_tris.len(), 2);
        assert_eq!(res.wings.len(), 2);
        assert_eq!(m.num_live_triangles(), before_tris - 2);
        assert!(!m.is_vertex_alive(u) && !m.is_vertex_alive(v));
        assert!(m.is_vertex_alive(res.new_vertex));
        m.validate().expect("mesh valid after collapse");
        assert_eq!(m.euler_characteristic(), 1);
    }

    #[test]
    fn wings_are_common_neighbors() {
        let mut m = grid(5);
        let commons = m.common_neighbors(12, 13);
        let res = m
            .collapse_edge(12, 13, (m.position(12) + m.position(13)) / 2.0)
            .unwrap();
        let mut w = res.wings.clone();
        let mut c = commons;
        w.sort();
        c.sort();
        assert_eq!(w, c);
        // The wings connect to the new vertex afterwards.
        for wing in res.wings {
            assert!(m.has_edge(wing, res.new_vertex));
        }
    }

    #[test]
    fn collapse_rejects_non_edges_and_dead() {
        let mut m = grid(4);
        assert_eq!(
            m.collapse_edge(0, 15, Vec3::ZERO).unwrap_err(),
            CollapseError::NotAnEdge
        );
        assert_eq!(
            m.collapse_edge(3, 3, Vec3::ZERO).unwrap_err(),
            CollapseError::BadVertices
        );
        assert_eq!(
            m.collapse_edge(0, 999, Vec3::ZERO).unwrap_err(),
            CollapseError::BadVertices
        );
    }

    #[test]
    fn collapse_rejects_foldover() {
        let mut m = grid(5);
        // Move the merged vertex far outside its neighbourhood: a
        // surviving triangle must flip and the collapse must fail.
        let err = m
            .collapse_edge(12, 13, Vec3::new(-100.0, -100.0, 0.0))
            .expect_err("foldover expected");
        assert_eq!(err, CollapseError::Foldover);
        m.validate().expect("failed collapse must not mutate");
        assert_eq!(m.num_live_vertices(), 25);
    }

    #[test]
    fn boundary_edge_collapse() {
        let mut m = grid(5);
        // (1,0)–(2,0) is a boundary edge (shared by one triangle).
        let shared = m.triangles_with_edge(1, 2);
        assert_eq!(shared.len(), 1);
        let mid = (m.position(1) + m.position(2)) / 2.0;
        let res = m.collapse_edge(1, 2, mid).expect("boundary collapse");
        assert_eq!(res.wings.len(), 1);
        m.validate().expect("valid after boundary collapse");
    }

    #[test]
    fn interior_edge_between_boundary_vertices_is_rejected() {
        // A quad split along its diagonal: the diagonal is an interior
        // edge whose endpoints both lie on the boundary.
        let mut m = TriMesh::from_parts(
            vec![
                Vec3::new(0.0, 0.0, 0.0), // A
                Vec3::new(1.0, 0.0, 0.0), // B
                Vec3::new(1.0, 1.0, 0.0), // C
                Vec3::new(0.0, 1.0, 0.0), // D
            ],
            &[[0, 1, 2], [0, 2, 3]],
        );
        assert_eq!(m.triangles_with_edge(0, 2).len(), 2);
        assert!(m.is_boundary_vertex(0) && m.is_boundary_vertex(2));
        let err = m
            .collapse_edge(0, 2, Vec3::new(0.5, 0.5, 0.0))
            .expect_err("diagonal collapse must be refused");
        assert_eq!(err, CollapseError::BoundaryViolation);
        m.validate().unwrap();
    }

    #[test]
    fn repeated_collapses_keep_mesh_valid() {
        let mut m = TriMesh::from_heightfield(&generate::fractal_terrain(9, 9, 11));
        let mut collapses = 0;
        // Greedily collapse any collapsible edge until none remain.
        loop {
            let mut done = true;
            let verts: Vec<u32> = m.live_vertices().collect();
            'outer: for &u in &verts {
                if !m.is_vertex_alive(u) {
                    continue;
                }
                for v in m.neighbors(u) {
                    let mid = (m.position(u) + m.position(v)) / 2.0;
                    if m.collapse_edge(u, v, mid).is_ok() {
                        collapses += 1;
                        done = false;
                        break 'outer;
                    }
                }
            }
            if done {
                break;
            }
        }
        assert!(collapses > 20, "only {collapses} collapses on a 9×9 grid");
        m.validate()
            .expect("mesh valid after exhaustive collapsing");
    }

    #[test]
    fn from_parts_roundtrip() {
        let m = TriMesh::from_parts(
            vec![
                Vec3::new(0.0, 0.0, 0.0),
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(1.0, 1.0, 0.0),
            ],
            &[[0, 1, 2], [1, 3, 2]],
        );
        assert_eq!(m.num_live_triangles(), 2);
        m.validate().unwrap();
        assert!(m.has_edge(1, 2));
        assert!(!m.has_edge(0, 3));
        assert_eq!(m.triangles_with_edge(1, 2).len(), 2);
    }

    #[test]
    fn validate_detects_orientation_flip() {
        let m = TriMesh::from_parts(
            vec![
                Vec3::new(0.0, 0.0, 0.0),
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
            ],
            &[[0, 2, 1]], // clockwise
        );
        assert!(m.validate().is_err());
    }

    #[test]
    fn boundary_detection() {
        let m = grid(4);
        assert!(m.is_boundary_vertex(0));
        assert!(m.is_boundary_vertex(3));
        assert!(m.is_boundary_vertex(7));
        assert!(!m.is_boundary_vertex(5)); // interior (1,1)
    }
}

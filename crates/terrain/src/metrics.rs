//! Approximation-error metrics: how far a simplified mesh deviates from
//! the original heightfield.
//!
//! Used by the `terrain_analysis` example and by tests asserting that
//! lower LOD values (smaller approximation error bounds) really produce
//! more accurate meshes.

use std::collections::HashMap;

use dm_geom::tri::{orient2d, point_in_triangle};
use dm_geom::Vec2;

use crate::heightfield::Heightfield;
use crate::mesh::TriMesh;

/// Error summary of a mesh against the source heightfield.
#[derive(Clone, Copy, Debug, Default)]
pub struct ErrorStats {
    /// Root-mean-square vertical error over the sampled points.
    pub rmse: f64,
    /// Largest vertical error seen.
    pub max: f64,
    /// Samples that fell outside every triangle (mesh holes or boundary
    /// shrinkage); excluded from rmse/max.
    pub uncovered: usize,
    /// Samples measured.
    pub samples: usize,
}

/// Sample the heightfield every `step` grid cells and measure the vertical
/// distance to the mesh surface.
///
/// Point location uses a uniform triangle bucket grid, so the cost is
/// `O(samples + triangles)` for terrain-shaped meshes.
pub fn mesh_error(mesh: &TriMesh, hf: &Heightfield, step: usize) -> ErrorStats {
    assert!(step >= 1);
    let bounds = hf.bounds();
    let cell = hf.cell() * 4.0; // bucket size: a few heightfield cells
    let inv = 1.0 / cell;
    let bucket_of = |p: Vec2| -> (i64, i64) {
        (
            ((p.x - bounds.min.x) * inv).floor() as i64,
            ((p.y - bounds.min.y) * inv).floor() as i64,
        )
    };

    // Bucket triangles by the cells their bounding box covers.
    let mut buckets: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
    for t in mesh.live_triangles() {
        let tri = mesh.triangle(t);
        let pts = [
            mesh.position(tri[0]).xy(),
            mesh.position(tri[1]).xy(),
            mesh.position(tri[2]).xy(),
        ];
        let (x0, y0) = bucket_of(Vec2::new(
            pts.iter().map(|p| p.x).fold(f64::INFINITY, f64::min),
            pts.iter().map(|p| p.y).fold(f64::INFINITY, f64::min),
        ));
        let (x1, y1) = bucket_of(Vec2::new(
            pts.iter().map(|p| p.x).fold(f64::NEG_INFINITY, f64::max),
            pts.iter().map(|p| p.y).fold(f64::NEG_INFINITY, f64::max),
        ));
        for bx in x0..=x1 {
            for by in y0..=y1 {
                buckets.entry((bx, by)).or_default().push(t);
            }
        }
    }

    let mut sum_sq = 0.0;
    let mut max = 0.0f64;
    let mut uncovered = 0usize;
    let mut samples = 0usize;
    for row in (0..hf.height()).step_by(step) {
        for col in (0..hf.width()).step_by(step) {
            let p = hf.world(col, row);
            samples += 1;
            let Some(z) = interpolate_z(mesh, &buckets, bucket_of(p.xy()), p.xy()) else {
                uncovered += 1;
                continue;
            };
            let d = (z - p.z).abs();
            sum_sq += d * d;
            max = max.max(d);
        }
    }
    let covered = samples - uncovered;
    ErrorStats {
        rmse: if covered > 0 {
            (sum_sq / covered as f64).sqrt()
        } else {
            0.0
        },
        max,
        uncovered,
        samples,
    }
}

fn interpolate_z(
    mesh: &TriMesh,
    buckets: &HashMap<(i64, i64), Vec<u32>>,
    bucket: (i64, i64),
    p: Vec2,
) -> Option<f64> {
    let tris = buckets.get(&bucket)?;
    for &t in tris {
        let tri = mesh.triangle(t);
        let a = mesh.position(tri[0]);
        let b = mesh.position(tri[1]);
        let c = mesh.position(tri[2]);
        if point_in_triangle(p, a.xy(), b.xy(), c.xy()) {
            let det = orient2d(a.xy(), b.xy(), c.xy());
            if det.abs() < 1e-30 {
                continue;
            }
            let l1 = orient2d(p, b.xy(), c.xy()) / det;
            let l2 = orient2d(a.xy(), p, c.xy()) / det;
            let l3 = 1.0 - l1 - l2;
            return Some(l1 * a.z + l2 * b.z + l3 * c.z);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn full_resolution_mesh_has_zero_error() {
        let hf = generate::fractal_terrain(17, 17, 3);
        let mesh = TriMesh::from_heightfield(&hf);
        let e = mesh_error(&mesh, &hf, 1);
        assert_eq!(e.uncovered, 0);
        assert!(e.rmse < 1e-9, "rmse = {}", e.rmse);
        assert!(e.max < 1e-9);
        assert_eq!(e.samples, 17 * 17);
    }

    #[test]
    fn flat_mesh_over_bumpy_terrain_has_error() {
        let hf = generate::fractal_terrain(17, 17, 3);
        let flat = Heightfield::flat(17, 17, 1.0, 0.0);
        let mesh = TriMesh::from_heightfield(&flat);
        let e = mesh_error(&mesh, &hf, 1);
        assert!(e.rmse > 0.0);
        assert!(e.max >= e.rmse);
    }

    #[test]
    fn sampling_step_reduces_samples() {
        let hf = generate::ramp(16, 16, 1.0);
        let mesh = TriMesh::from_heightfield(&hf);
        let e1 = mesh_error(&mesh, &hf, 1);
        let e4 = mesh_error(&mesh, &hf, 4);
        assert!(e4.samples < e1.samples);
    }

    #[test]
    fn collapsed_ramp_stays_exact() {
        // The ramp is planar: midpoint collapses preserve the surface.
        let hf = generate::ramp(9, 9, 1.0);
        let mut mesh = TriMesh::from_heightfield(&hf);
        let mut collapsed = 0;
        let verts: Vec<u32> = mesh.live_vertices().collect();
        for u in verts {
            if !mesh.is_vertex_alive(u) {
                continue;
            }
            for v in mesh.neighbors(u) {
                let mid = (mesh.position(u) + mesh.position(v)) / 2.0;
                if mesh.collapse_edge(u, v, mid).is_ok() {
                    collapsed += 1;
                    break;
                }
            }
        }
        assert!(collapsed > 5);
        let e = mesh_error(&mesh, &hf, 1);
        assert!(
            e.rmse < 1e-9,
            "planar surface must stay exact, rmse = {}",
            e.rmse
        );
    }
}

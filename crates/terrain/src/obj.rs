//! Wavefront OBJ export, so reconstructed terrain approximations can be
//! inspected in any 3D viewer.

use std::io::{self, Write};

use crate::mesh::TriMesh;

/// Write the live part of a mesh as a Wavefront OBJ document.
///
/// Dead vertices are compacted away; triangle indices are rewritten to the
/// compact numbering (OBJ indices are 1-based).
pub fn write_obj(mesh: &TriMesh, out: &mut impl Write) -> io::Result<()> {
    let mut remap = vec![0u32; mesh.vertex_capacity()];
    writeln!(out, "# direct-mesh terrain export")?;
    writeln!(out, "o terrain")?;
    // OBJ indices are 1-based.
    for (next, v) in (1u32..).zip(mesh.live_vertices()) {
        let p = mesh.position(v);
        remap[v as usize] = next;
        writeln!(out, "v {} {} {}", p.x, p.y, p.z)?;
    }
    for t in mesh.live_triangles() {
        let tri = mesh.triangle(t);
        writeln!(
            out,
            "f {} {} {}",
            remap[tri[0] as usize], remap[tri[1] as usize], remap[tri[2] as usize]
        )?;
    }
    Ok(())
}

/// Convenience: render to a `String`.
pub fn to_obj_string(mesh: &TriMesh) -> String {
    let mut buf = Vec::new();
    write_obj(mesh, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("OBJ output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn obj_counts_match_mesh() {
        let mesh = TriMesh::from_heightfield(&generate::ramp(4, 4, 1.0));
        let obj = to_obj_string(&mesh);
        let vs = obj.lines().filter(|l| l.starts_with("v ")).count();
        let fs = obj.lines().filter(|l| l.starts_with("f ")).count();
        assert_eq!(vs, mesh.num_live_vertices());
        assert_eq!(fs, mesh.num_live_triangles());
    }

    #[test]
    fn obj_indices_are_in_range_after_collapse() {
        let mut mesh = TriMesh::from_heightfield(&generate::ramp(5, 5, 1.0));
        // Kill some vertices via collapse so the remap matters.
        let mid = (mesh.position(12) + mesh.position(13)) / 2.0;
        mesh.collapse_edge(12, 13, mid).unwrap();
        let obj = to_obj_string(&mesh);
        let vs = obj.lines().filter(|l| l.starts_with("v ")).count();
        for line in obj.lines().filter(|l| l.starts_with("f ")) {
            for idx in line.split_whitespace().skip(1) {
                let i: usize = idx.parse().unwrap();
                assert!(i >= 1 && i <= vs, "face index {i} out of range 1..={vs}");
            }
        }
    }
}

//! World construction: split one built store into a tiled world, or
//! assemble independent stores into one (`dm world-build`).
//!
//! Splitting partitions a store's records by plan-view position into an
//! `nx × ny` grid — ids, parent/child/wing links and connection lists
//! are carried over *verbatim* (they are global to the source store and
//! may cross tile boundaries), and every tile keeps the source's bounds
//! and `e_max` so its fetch-path LOD clamping stays bit-identical to
//! the source. Assembly places unrelated stores side by side in the
//! world frame, giving each a disjoint id range via `id_base` prefix
//! sums.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use dm_geom::{Rect, Vec2};
use dm_storage::{BufferPool, FileStore, MemStore, StorageError, StorageResult};

use dm_core::{DirectMeshDb, DmBuildOptions, DmRecord};

use crate::manifest::{RegionMeta, WorldManifest};
use crate::world::{open_region_store, WorldDb, WorldOptions};

/// Partition a store's records into an `nx × ny` plan-view grid
/// (row-major cells over the store's bounds). Every record lands in
/// exactly one cell; cells can be empty.
pub fn partition_grid(db: &DirectMeshDb, nx: usize, ny: usize) -> Vec<Vec<DmRecord>> {
    assert!(nx >= 1 && ny >= 1, "grid must be at least 1×1");
    let b = db.bounds;
    let w = (b.max.x - b.min.x).max(1e-12);
    let h = (b.max.y - b.min.y).max(1e-12);
    let mut cells: Vec<Vec<DmRecord>> = (0..nx * ny).map(|_| Vec::new()).collect();
    for (_, rec) in db.all_records() {
        let p = rec.node.pos;
        let gx = (((p.x - b.min.x) / w * nx as f64) as usize).min(nx - 1);
        let gy = (((p.y - b.min.y) / h * ny as f64) as usize).min(ny - 1);
        cells[gy * nx + gx].push(rec);
    }
    cells
}

/// Plan-view bounding rectangle of a record set.
fn record_bounds(recs: &[DmRecord]) -> Rect {
    let mut min = Vec2::new(f64::INFINITY, f64::INFINITY);
    let mut max = Vec2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
    for r in recs {
        min.x = min.x.min(r.node.pos.x);
        min.y = min.y.min(r.node.pos.y);
        max.x = max.x.max(r.node.pos.x);
        max.y = max.y.max(r.node.pos.y);
    }
    Rect::from_corners(min, max)
}

fn split_metas(db: &DirectMeshDb, nx: usize, ny: usize) -> Vec<(RegionMeta, Vec<DmRecord>)> {
    partition_grid(db, nx, ny)
        .into_iter()
        .enumerate()
        .filter(|(_, recs)| !recs.is_empty())
        .map(|(cell, recs)| {
            let meta = RegionMeta {
                id: cell as u32,
                id_base: 0,
                n_records: recs.len() as u32,
                offset: Vec2::new(0.0, 0.0),
                bounds: record_bounds(&recs),
                e_max: db.e_max,
                path: PathBuf::new(),
            };
            (meta, recs)
        })
        .collect()
}

/// Split `db` into an in-memory `nx × ny` tiled world (tests, benches).
/// Every tile is a full store of its own — heap, B+-tree, R\*-tree,
/// cost model — built over a `MemStore` pool of `pool_pages` frames.
pub fn split_world_in_memory(
    db: &DirectMeshDb,
    nx: usize,
    ny: usize,
    pool_pages: usize,
    build: &DmBuildOptions,
    wopts: WorldOptions,
) -> StorageResult<WorldDb> {
    let regions = split_metas(db, nx, ny)
        .into_iter()
        .map(|(meta, recs)| {
            let pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), pool_pages));
            let tile = DirectMeshDb::build_from_records(pool, recs, db.bounds, db.e_max, build);
            (meta, tile)
        })
        .collect();
    WorldDb::from_regions(regions, wopts)
}

/// Split `db` into `nx × ny` file-backed tile stores under `dir` and
/// write the world manifest next to them. Returns the manifest path.
pub fn write_split_world(
    db: &DirectMeshDb,
    nx: usize,
    ny: usize,
    dir: &Path,
    build: &DmBuildOptions,
) -> StorageResult<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let mut regions = Vec::new();
    for (mut meta, recs) in split_metas(db, nx, ny) {
        let name = format!("tile_{:04}.dm", meta.id);
        let path = dir.join(&name);
        let store = FileStore::create(&path)?;
        let pool = Arc::new(BufferPool::new(Box::new(store), 4096));
        DirectMeshDb::create_from_records_in(pool, recs, db.bounds, db.e_max, build);
        meta.path = PathBuf::from(name); // relative to the manifest
        regions.push(meta);
    }
    let manifest = WorldManifest {
        e_max: db.e_max,
        regions,
    };
    let path = dir.join("world.dmwm");
    manifest.write(&path)?;
    Ok(path)
}

/// Assemble independent store files into a world manifest: stores are
/// placed left-to-right along `x` (each normalized to start at the
/// running cursor, `y` normalized to 0) with `gap` world units between
/// them, and receive disjoint id ranges via `id_base` prefix sums.
pub fn assemble_manifest(paths: &[PathBuf], gap: f64) -> StorageResult<WorldManifest> {
    if paths.is_empty() {
        return Err(StorageError::format("world-build needs at least one store"));
    }
    let mut regions = Vec::new();
    let mut cursor = 0.0f64;
    let mut id_base = 0u64;
    let mut e_max = 0.0f64;
    for (i, p) in paths.iter().enumerate() {
        let (pool, catalog_page) = open_region_store(p, 256, None)?;
        let db = DirectMeshDb::open_at(pool, catalog_page)?;
        let b = db.bounds;
        if id_base + db.n_records as u64 > u64::from(u32::MAX) {
            return Err(StorageError::format(
                "world id space exhausted (more than 2^32 - 1 records)",
            ));
        }
        regions.push(RegionMeta {
            id: i as u32,
            id_base: id_base as u32,
            n_records: db.n_records as u32,
            offset: Vec2::new(cursor - b.min.x, -b.min.y),
            bounds: b,
            e_max: db.e_max,
            path: p.clone(),
        });
        cursor += (b.max.x - b.min.x) + gap;
        id_base += db.n_records as u64;
        e_max = e_max.max(db.e_max);
    }
    Ok(WorldManifest { e_max, regions })
}

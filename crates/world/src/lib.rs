//! Multi-terrain world catalog: serve many Direct Mesh regions from one
//! process.
//!
//! The paper's system manages a single terrain database; deployments
//! hold many — a planet of tiles, several unrelated datasets, or one
//! huge terrain split for build parallelism. This crate adds a thin
//! catalog layer over unmodified single-terrain stores:
//!
//! * [`manifest`] — the versioned, checksummed world manifest mapping
//!   region ids to store paths and world-frame placement,
//! * [`WorldDb`] — lazy region opens behind an LRU handle cap, a shared
//!   page budget weighted per region (separate pools: a viral region
//!   can never evict a cold one's pages), a region-level R\*-tree for
//!   cross-tile fan-out, and world-frame VI/VD queries that are
//!   bit-identical to single-store answers for split worlds,
//! * [`WorldSession`] — server-side walkthrough sessions that pin the
//!   regions they touch,
//! * [`build`] — splitting one store into a tiled world and assembling
//!   independent stores into one (`dm world-build`).

pub mod build;
pub mod manifest;
pub mod world;

pub use build::{assemble_manifest, partition_grid, split_world_in_memory, write_split_world};
pub use manifest::{RegionMeta, WorldManifest};
pub use world::{
    open_region_store, RegionStats, WorldDb, WorldOptions, WorldSession, DEFAULT_REGION_PAGES,
};

//! The world manifest: a small versioned binary file mapping region ids
//! to store paths and world-frame placement, checksummed like the
//! database catalog (magic → version → payload CRC32, so a foreign file
//! reports "not a manifest" before a torn one reports "checksum").
//!
//! Layout (little endian):
//!
//! ```text
//! "DMWM" u32(version = 1)
//! f64(world e_max)
//! u32(n_regions)
//! per region:
//!   u32(id) u32(id_base) u32(n_records)
//!   offset (2×f64)            -- region frame → world frame translation
//!   bounds (4×f64)            -- plan-view record bounds, region frame
//!   f64(e_max)
//!   u16(path len) path bytes  -- store file, relative paths resolved
//!                                against the manifest's directory
//! u32(crc32 of everything above)
//! ```
//!
//! The manifest stores *placement*, not data: each region remains an
//! ordinary single-terrain Direct Mesh store file (with its own catalog,
//! WAL root, checksums), openable on its own by every existing tool.

use std::path::{Path, PathBuf};

use dm_geom::{Rect, Vec2};
use dm_storage::{crc32, StorageError, StorageResult};

const MAGIC: &[u8; 4] = b"DMWM";
const VERSION: u32 = 1;

/// One region's row in the world manifest.
#[derive(Clone, Debug, PartialEq)]
pub struct RegionMeta {
    /// Stable region id (what the wire protocol and stats report).
    pub id: u32,
    /// Offset added to this region's record ids to form world ids
    /// (0 for worlds split out of one store, whose ids are already
    /// globally unique; prefix sums for assembled worlds).
    pub id_base: u32,
    /// Records in the region store.
    pub n_records: u32,
    /// Region frame → world frame plan-view translation.
    pub offset: Vec2,
    /// Plan-view bounds of the region's records, in the *region* frame.
    pub bounds: Rect,
    /// The region store's `e_max` (LOD axis is never translated).
    pub e_max: f64,
    /// Store file path as written in the manifest.
    pub path: PathBuf,
}

impl RegionMeta {
    /// The region's plan-view footprint in world coordinates — what the
    /// region-level R\*-tree indexes.
    pub fn world_bounds(&self) -> Rect {
        self.bounds.translated(self.offset)
    }
}

/// A decoded world manifest.
#[derive(Clone, Debug, PartialEq)]
pub struct WorldManifest {
    /// Largest region `e_max`: the world's LOD clamp.
    pub e_max: f64,
    pub regions: Vec<RegionMeta>,
}

impl WorldManifest {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + 96 * self.regions.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.e_max.to_le_bytes());
        out.extend_from_slice(&(self.regions.len() as u32).to_le_bytes());
        for r in &self.regions {
            out.extend_from_slice(&r.id.to_le_bytes());
            out.extend_from_slice(&r.id_base.to_le_bytes());
            out.extend_from_slice(&r.n_records.to_le_bytes());
            for v in [
                r.offset.x,
                r.offset.y,
                r.bounds.min.x,
                r.bounds.min.y,
                r.bounds.max.x,
                r.bounds.max.y,
                r.e_max,
            ] {
                out.extend_from_slice(&v.to_le_bytes());
            }
            let path = r.path.to_string_lossy();
            let bytes = path.as_bytes();
            assert!(bytes.len() <= u16::MAX as usize, "region path too long");
            out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
            out.extend_from_slice(bytes);
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    pub fn decode(b: &[u8]) -> StorageResult<WorldManifest> {
        if b.len() < 4 {
            return Err(StorageError::format("world manifest truncated"));
        }
        let (body, trailer) = b.split_at(b.len() - 4);
        let stored = u32::from_le_bytes(trailer.try_into().unwrap());
        let computed = crc32(body);
        let mut cur = Cursor { b: body, off: 0 };
        if cur.take(4)? != MAGIC {
            return Err(StorageError::format(
                "not a Direct Mesh world manifest (bad magic)",
            ));
        }
        let version = cur.u32()?;
        if version != VERSION {
            return Err(StorageError::format(format!(
                "unsupported world manifest version {version} (this build reads version {VERSION})"
            )));
        }
        // Magic and version precede the CRC check, catalog-style.
        if stored != computed {
            return Err(StorageError::format(format!(
                "world manifest checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            )));
        }
        let e_max = cur.f64()?;
        let n = cur.u32()? as usize;
        let mut regions = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let id = cur.u32()?;
            let id_base = cur.u32()?;
            let n_records = cur.u32()?;
            let offset = Vec2::new(cur.f64()?, cur.f64()?);
            let min = Vec2::new(cur.f64()?, cur.f64()?);
            let max = Vec2::new(cur.f64()?, cur.f64()?);
            let e_max = cur.f64()?;
            let len = cur.u16()? as usize;
            let path = std::str::from_utf8(cur.take(len)?)
                .map_err(|_| StorageError::format("region path is not UTF-8"))?;
            regions.push(RegionMeta {
                id,
                id_base,
                n_records,
                offset,
                bounds: Rect::from_corners(min, max),
                e_max,
                path: PathBuf::from(path),
            });
        }
        if cur.off != body.len() {
            return Err(StorageError::format("world manifest has trailing bytes"));
        }
        Ok(WorldManifest { e_max, regions })
    }

    /// Write the manifest to `path` (atomically via a sibling temp file,
    /// so a crashed write never leaves a half-manifest behind).
    pub fn write(&self, path: &Path) -> StorageResult<()> {
        let tmp = path.with_extension("world.tmp");
        std::fs::write(&tmp, self.encode())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Read and validate the manifest at `path`, resolving relative
    /// region paths against the manifest's directory.
    pub fn read(path: &Path) -> StorageResult<WorldManifest> {
        let bytes = std::fs::read(path)?;
        let mut m = Self::decode(&bytes)?;
        let base = path.parent().unwrap_or(Path::new("."));
        for r in &mut m.regions {
            if r.path.is_relative() {
                r.path = base.join(&r.path);
            }
        }
        Ok(m)
    }

    /// Union of the regions' world-frame footprints.
    pub fn world_bounds(&self) -> Rect {
        let mut out = Rect::EMPTY;
        for r in &self.regions {
            out = out.union(&r.world_bounds());
        }
        out
    }
}

struct Cursor<'a> {
    b: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> StorageResult<&'a [u8]> {
        if self.off + n > self.b.len() {
            return Err(StorageError::format("world manifest truncated"));
        }
        let s = &self.b[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    fn u16(&mut self) -> StorageResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> StorageResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> StorageResult<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WorldManifest {
        WorldManifest {
            e_max: 42.5,
            regions: vec![
                RegionMeta {
                    id: 0,
                    id_base: 0,
                    n_records: 1000,
                    offset: Vec2::new(0.0, 0.0),
                    bounds: Rect::from_corners(Vec2::new(0.0, 0.0), Vec2::new(16.0, 16.0)),
                    e_max: 42.5,
                    path: PathBuf::from("tiles/a.dm"),
                },
                RegionMeta {
                    id: 1,
                    id_base: 1000,
                    n_records: 512,
                    offset: Vec2::new(16.5, 0.0),
                    bounds: Rect::from_corners(Vec2::new(0.0, 0.0), Vec2::new(8.0, 8.0)),
                    e_max: 17.25,
                    path: PathBuf::from("tiles/b.dm"),
                },
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = sample();
        assert_eq!(WorldManifest::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn world_bounds_union_translated() {
        let m = sample();
        let wb = m.world_bounds();
        assert_eq!(wb.min, Vec2::new(0.0, 0.0));
        assert_eq!(wb.max, Vec2::new(24.5, 16.0));
    }

    #[test]
    fn decode_rejects_garbage_and_tampering() {
        assert!(WorldManifest::decode(b"XXXXnope").is_err());
        let mut bytes = sample().encode();
        bytes.truncate(bytes.len() - 2);
        assert!(WorldManifest::decode(&bytes).is_err());
        let mut bytes = sample().encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        let err = WorldManifest::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn decode_rejects_wrong_version() {
        let mut bytes = sample().encode();
        bytes[4] = 9;
        let err = WorldManifest::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn file_roundtrip_resolves_relative_paths() {
        let dir = std::env::temp_dir().join(format!("dm_world_manifest_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.world");
        let m = sample();
        m.write(&path).unwrap();
        let back = WorldManifest::read(&path).unwrap();
        assert_eq!(back.e_max, m.e_max);
        assert_eq!(back.regions[0].path, dir.join("tiles/a.dm"));
        assert_eq!(back.regions[1].id_base, 1000);
        std::fs::remove_dir_all(&dir).ok();
    }
}

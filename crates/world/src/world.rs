//! The world catalog: many single-terrain Direct Mesh stores served
//! behind one query facade.
//!
//! A [`WorldDb`] owns a [`WorldManifest`] plus a region-level R\*-tree
//! over the regions' world-frame footprints. Region stores are opened
//! *lazily* on first touch and kept behind an LRU cap
//! ([`WorldOptions::max_open`]); each open region gets its own buffer
//! pool, sized from a shared page budget weighted by the region's heap
//! size (with a per-region floor), so a viral region can grow its share
//! but can never evict a colder region's working set — the pools are
//! physically separate and only the *budget* is shared.
//!
//! ## Frames and bit-identity
//!
//! Regions live in their own local coordinate frame; the manifest's
//! `offset` translates plan-view positions into the world frame and
//! `id_base` translates record ids (the LOD axis is never touched). A
//! cross-tile query translates its world-frame boxes into each
//! overlapping region's frame, fetches with the *same* boxes the
//! single-store path would use, translates the records back, and feeds
//! the merged union through the exact single-store assembly code
//! ([`dm_core::uniform_cut`], [`dm_core::topmost_front`], and
//! [`dm_mtm::refine::refine`]). For a world split out of one store
//! (offsets zero, `id_base` zero) the records partition exactly, so the
//! merged set — and therefore every derived mesh — is bit-identical to
//! the single store's answer by construction. The per-region fan-out
//! reuses [`dm_core::parallel::par_map`], whose output order never
//! depends on scheduling, and all merges run in ascending region order.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dm_core::parallel::par_map;
use dm_geom::{Box3, Rect, Vec2};
use dm_index::RStarTree;
use dm_mtm::refine::{refine, RecordSource};
use dm_mtm::{PmNode, NIL_ID};
use dm_storage::{
    BufferPool, FaultConfig, FaultInjector, FileStore, MemStore, PageStore, RootFile, StorageError,
    StorageResult,
};
use fxhash::{FxHashMap, FxHashSet};
use parking_lot::Mutex;

use dm_core::{
    equal_strips, topmost_front, uniform_cut, BoundaryPolicy, DbStats, DirectMeshDb, DmRecord,
    FetchCounters, FetchedSet, IntegrityReport, VdQuery, VdResult, ViFlatResult,
};

use crate::manifest::{RegionMeta, WorldManifest};

/// Pool pages per open region when no world page budget is set.
pub const DEFAULT_REGION_PAGES: usize = 4096;

/// Tuning knobs for a [`WorldDb`].
#[derive(Clone, Debug)]
pub struct WorldOptions {
    /// Maximum simultaneously open region stores. Opening one more
    /// evicts the least-recently-used unpinned region; if every open
    /// region is pinned the cap is temporarily exceeded rather than
    /// failing the query.
    pub max_open: usize,
    /// Total buffer-pool pages shared by all open regions (0 =
    /// unbudgeted: every region gets [`DEFAULT_REGION_PAGES`]). The
    /// budget is split across open regions proportionally to their heap
    /// size, never below `region_floor`.
    pub page_budget: usize,
    /// Minimum pool pages an open region is guaranteed, whatever its
    /// weight.
    pub region_floor: usize,
    /// Worker threads for the per-region query fan-out (0 = auto).
    pub threads: usize,
    /// Open regions with [`DirectMeshDb::open_degraded_at`]: unreadable
    /// heap pages are skipped (losses land in the slot's open report)
    /// instead of failing the open.
    pub degraded: bool,
    /// Wrap each region's file store in a deterministic
    /// [`FaultInjector`] (tests and fault drills).
    pub fault: Option<FaultConfig>,
}

impl Default for WorldOptions {
    fn default() -> Self {
        WorldOptions {
            max_open: 8,
            page_budget: 0,
            region_floor: 64,
            threads: 0,
            degraded: false,
            fault: None,
        }
    }
}

/// Per-region lifecycle and traffic counters, as reported by
/// [`WorldDb::region_stats`] (and over the wire by `WorldStats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegionStats {
    pub id: u32,
    /// Times the region store was (re)opened.
    pub opens: u64,
    /// Times the region was closed by LRU pressure.
    pub evictions: u64,
    /// Queries that found the region already open.
    pub hits: u64,
    /// Queries that touched the region at all.
    pub queries: u64,
    /// Pages currently resident in the region's buffer pool (0 when
    /// closed).
    pub resident_pages: u64,
    pub open: bool,
}

#[derive(Default)]
struct RegionCounters {
    opens: AtomicU64,
    evictions: AtomicU64,
    hits: AtomicU64,
    queries: AtomicU64,
}

struct RegionSlot {
    db: Option<Arc<DirectMeshDb>>,
    /// LRU clock value of the last touch.
    last_used: u64,
    /// Pins held by sessions; a pinned region is never evicted.
    pins: u32,
    /// In-memory regions ([`WorldDb::from_regions`]) have no file to
    /// reopen from, so they are never evicted.
    evictable: bool,
    /// What a degraded open had to skip (empty for clean opens).
    open_report: IntegrityReport,
}

struct WorldState {
    slots: Vec<RegionSlot>,
    tick: u64,
    n_open: usize,
}

/// A multi-region Direct Mesh world (see the module docs).
pub struct WorldDb {
    regions: Vec<RegionMeta>,
    /// Region-level index: world-frame footprint prisms → region index.
    rtree: RStarTree,
    /// Largest region `e_max` — the world LOD clamp.
    e_max: f64,
    /// Union of region footprints, world frame.
    bounds: Rect,
    opts: WorldOptions,
    state: Mutex<WorldState>,
    counters: Vec<RegionCounters>,
}

fn neg(v: Vec2) -> Vec2 {
    Vec2::new(-v.x, -v.y)
}

fn remap_id(id: u32, base: u32) -> u32 {
    if id == NIL_ID {
        id
    } else {
        id + base
    }
}

fn remap_node(mut n: PmNode, base: u32, offset: Vec2) -> PmNode {
    if base != 0 {
        n.id += base;
        n.parent = remap_id(n.parent, base);
        n.child1 = remap_id(n.child1, base);
        n.child2 = remap_id(n.child2, base);
        n.wing1 = remap_id(n.wing1, base);
        n.wing2 = remap_id(n.wing2, base);
    }
    n.pos.x += offset.x;
    n.pos.y += offset.y;
    n
}

fn remap_record(mut rec: DmRecord, base: u32, offset: Vec2) -> DmRecord {
    rec.node = remap_node(rec.node, base, offset);
    if base != 0 {
        for c in &mut rec.conn {
            *c = remap_id(*c, base);
        }
    }
    rec
}

/// Open the store file at `path` read-only, following the committed
/// root (`<store>.root`, written by the live edit path) to the current
/// catalog page; a store without a root file reads its catalog at page
/// 0, exactly like [`DirectMeshDb::create_in`] left it.
pub fn open_region_store(
    path: &Path,
    cache_pages: usize,
    fault: Option<FaultConfig>,
) -> StorageResult<(Arc<BufferPool>, dm_storage::PageId)> {
    let root = dm_storage::wal::root_path(path);
    let catalog_page = if root.exists() {
        let (_f, rec) = RootFile::open(&root)?;
        rec.map(|r| r.catalog_page).unwrap_or(0)
    } else {
        0
    };
    let store = FileStore::open_trimmed(path)?;
    let store: Box<dyn PageStore> = match fault {
        Some(cfg) => Box::new(FaultInjector::new(Box::new(store), cfg)),
        None => Box::new(store),
    };
    Ok((
        Arc::new(BufferPool::new(store, cache_pages.max(1))),
        catalog_page,
    ))
}

impl WorldDb {
    /// Open the world whose manifest lives at `path`. No region store is
    /// touched yet — handles open lazily on first query.
    pub fn open(path: &Path, opts: WorldOptions) -> StorageResult<WorldDb> {
        Self::from_manifest(WorldManifest::read(path)?, opts)
    }

    /// Build a world from a decoded manifest (region paths must already
    /// be resolved).
    pub fn from_manifest(m: WorldManifest, opts: WorldOptions) -> StorageResult<WorldDb> {
        Self::new_inner(m.regions, opts, Vec::new())
    }

    /// Build a world from already-open region databases — the in-memory
    /// construction used by tests and benches. These regions have no
    /// file to reopen from, so they are exempt from LRU eviction.
    pub fn from_regions(
        regions: Vec<(RegionMeta, DirectMeshDb)>,
        opts: WorldOptions,
    ) -> StorageResult<WorldDb> {
        let (metas, dbs): (Vec<_>, Vec<_>) = regions.into_iter().unzip();
        Self::new_inner(metas, opts, dbs)
    }

    fn new_inner(
        regions: Vec<RegionMeta>,
        opts: WorldOptions,
        prebuilt: Vec<DirectMeshDb>,
    ) -> StorageResult<WorldDb> {
        if regions.is_empty() {
            return Err(StorageError::format("world has no regions"));
        }
        assert!(
            prebuilt.is_empty() || prebuilt.len() == regions.len(),
            "prebuilt region count mismatch"
        );
        let e_max = regions.iter().map(|r| r.e_max).fold(0.0, f64::max);
        let e_cap = e_max * 1.001 + 1e-9;
        let mut bounds = Rect::EMPTY;
        for r in &regions {
            bounds = bounds.union(&r.world_bounds());
        }
        let pool = Arc::new(BufferPool::new(
            Box::new(MemStore::new()),
            (regions.len() / 4).max(64),
        ));
        let items: Vec<(Box3, u64)> = regions
            .iter()
            .enumerate()
            .map(|(i, r)| (Box3::prism(r.world_bounds(), 0.0, e_cap), i as u64))
            .collect();
        let rtree = RStarTree::bulk_load(pool, items, 0.7);
        let counters: Vec<RegionCounters> =
            regions.iter().map(|_| RegionCounters::default()).collect();
        let in_memory = !prebuilt.is_empty();
        let mut dbs: Vec<Option<Arc<DirectMeshDb>>> =
            prebuilt.into_iter().map(|db| Some(Arc::new(db))).collect();
        dbs.resize_with(regions.len(), || None);
        let n_open = dbs.iter().filter(|d| d.is_some()).count();
        let slots = dbs
            .into_iter()
            .map(|db| RegionSlot {
                db,
                last_used: 0,
                pins: 0,
                evictable: !in_memory,
                open_report: IntegrityReport::default(),
            })
            .collect();
        for c in counters.iter().take(n_open) {
            c.opens.store(1, Ordering::Relaxed);
        }
        Ok(WorldDb {
            regions,
            rtree,
            e_max,
            bounds,
            opts,
            state: Mutex::new(WorldState {
                slots,
                tick: 0,
                n_open,
            }),
            counters,
        })
    }

    pub fn n_regions(&self) -> usize {
        self.regions.len()
    }

    /// The tuning knobs this world was opened with.
    pub fn options(&self) -> &WorldOptions {
        &self.opts
    }

    pub fn region_meta(&self, idx: usize) -> &RegionMeta {
        &self.regions[idx]
    }

    /// Union of the regions' world-frame footprints.
    pub fn bounds(&self) -> &Rect {
        &self.bounds
    }

    pub fn e_max(&self) -> f64 {
        self.e_max
    }

    /// Total records across all regions (manifest metadata; no I/O).
    pub fn n_records(&self) -> u64 {
        self.regions.iter().map(|r| u64::from(r.n_records)).sum()
    }

    pub fn e_cap(&self) -> f64 {
        self.e_max * 1.001 + 1e-9
    }

    /// World LOD clamp — same formula as the single-store clamp, over
    /// the largest region `e_max`. A world split out of one store
    /// inherits that store's `e_max` in every tile, so this clamp is
    /// bit-identical to the source store's.
    pub fn clamp_e(&self, e: f64) -> f64 {
        e.clamp(0.0, self.e_max * 1.0005 + 1e-12)
    }

    /// Region indices whose world-frame footprint intersects `b`,
    /// ascending (deterministic merge order).
    pub fn regions_for(&self, b: &Box3) -> StorageResult<Vec<usize>> {
        let mut idxs: Vec<usize> = Vec::new();
        self.rtree.try_query(b, |_, d| idxs.push(d as usize))?;
        idxs.sort_unstable();
        idxs.dedup();
        Ok(idxs)
    }

    /// Currently open region handles.
    pub fn open_count(&self) -> usize {
        self.state.lock().n_open
    }

    /// Pin a region: it stays open (exempt from LRU eviction) until the
    /// matching [`Self::unpin_region`]. Pins nest.
    pub fn pin_region(&self, idx: usize) {
        self.state.lock().slots[idx].pins += 1;
    }

    pub fn unpin_region(&self, idx: usize) {
        let mut state = self.state.lock();
        let slot = &mut state.slots[idx];
        debug_assert!(slot.pins > 0, "unpin without pin");
        slot.pins = slot.pins.saturating_sub(1);
    }

    /// Pins currently held on a region (observability for eviction
    /// tests).
    pub fn region_pins(&self, idx: usize) -> u32 {
        self.state.lock().slots[idx].pins
    }

    /// What a degraded open of this region had to skip (empty while the
    /// region is closed or after a clean open).
    pub fn region_open_report(&self, idx: usize) -> IntegrityReport {
        self.state.lock().slots[idx].open_report.clone()
    }

    /// Per-region lifecycle counters, ascending by region index.
    pub fn region_stats(&self) -> Vec<RegionStats> {
        let state = self.state.lock();
        self.regions
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let slot = &state.slots[i];
                RegionStats {
                    id: m.id,
                    opens: self.counters[i].opens.load(Ordering::Relaxed),
                    evictions: self.counters[i].evictions.load(Ordering::Relaxed),
                    hits: self.counters[i].hits.load(Ordering::Relaxed),
                    queries: self.counters[i].queries.load(Ordering::Relaxed),
                    resident_pages: slot.db.as_ref().map_or(0, |db| db.pool().resident() as u64),
                    open: slot.db.is_some(),
                }
            })
            .collect()
    }

    /// The region's open handle, opening (and possibly evicting another
    /// region) on miss. The returned `Arc` stays valid across a
    /// concurrent eviction — eviction only drops the catalog's
    /// reference.
    pub fn region(&self, idx: usize) -> StorageResult<Arc<DirectMeshDb>> {
        let mut state = self.state.lock();
        state.tick += 1;
        let tick = state.tick;
        if let Some(db) = &state.slots[idx].db {
            let db = Arc::clone(db);
            state.slots[idx].last_used = tick;
            self.counters[idx].hits.fetch_add(1, Ordering::Relaxed);
            return Ok(db);
        }

        // Make room under the handle cap. Pinned (and in-memory) regions
        // are skipped; if everything open is pinned the cap is exceeded
        // temporarily rather than failing the caller.
        while state.n_open >= self.opts.max_open.max(1) {
            let victim = state
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.db.is_some() && s.pins == 0 && s.evictable)
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i);
            match victim {
                Some(v) => {
                    state.slots[v].db = None;
                    state.slots[v].open_report = IntegrityReport::default();
                    state.n_open -= 1;
                    self.counters[v].evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }

        let meta = &self.regions[idx];
        let initial = if self.opts.page_budget == 0 {
            DEFAULT_REGION_PAGES
        } else {
            (self.opts.page_budget / (state.n_open + 1)).max(self.opts.region_floor.max(1))
        };
        let (pool, catalog_page) = open_region_store(&meta.path, initial, self.opts.fault)?;
        let mut report = IntegrityReport::default();
        let db = if self.opts.degraded {
            DirectMeshDb::open_degraded_at(pool, catalog_page, &mut report)?
        } else {
            DirectMeshDb::open_at(pool, catalog_page)?
        };
        let db = Arc::new(db);
        state.slots[idx].db = Some(Arc::clone(&db));
        state.slots[idx].last_used = tick;
        state.slots[idx].open_report = report;
        state.n_open += 1;
        self.counters[idx].opens.fetch_add(1, Ordering::Relaxed);
        self.rebalance_budgets(&mut state);
        Ok(db)
    }

    /// Re-split the world page budget across the open regions, weighted
    /// by heap size with a per-region floor. Separate pools mean a hot
    /// region's traffic can never evict a cold region's pages; only this
    /// explicit rebalance (on open/evict) moves capacity between them.
    fn rebalance_budgets(&self, state: &mut WorldState) {
        if self.opts.page_budget == 0 {
            return;
        }
        let open: Vec<usize> = (0..state.slots.len())
            .filter(|&i| state.slots[i].db.is_some())
            .collect();
        if open.is_empty() {
            return;
        }
        let floor = self.opts.region_floor.max(1);
        let total_heap: f64 = open
            .iter()
            .map(|&i| state.slots[i].db.as_ref().unwrap().n_heap_pages().max(1) as f64)
            .sum();
        for &i in &open {
            let db = state.slots[i].db.as_ref().unwrap();
            let w = db.n_heap_pages().max(1) as f64 / total_heap;
            let share = ((self.opts.page_budget as f64 * w) as usize).max(floor);
            // A failed shrink-flush leaves the old capacity in place for
            // the affected shard; read-only pools have nothing dirty, so
            // this is effectively infallible.
            let _ = db.pool().try_set_capacity(share);
        }
    }

    /// Region index for a manifest region id (what the wire protocol's
    /// `QueryScope::Region` names).
    pub fn resolve_region_id(&self, id: u32) -> Option<usize> {
        self.regions.iter().position(|m| m.id == id)
    }

    /// Flush every *open* region's buffer pool and reset its statistics
    /// (paper-protocol cold measurement). Closed regions are already
    /// cold by construction.
    pub fn try_cold_start(&self) -> StorageResult<()> {
        let open: Vec<Arc<DirectMeshDb>> = {
            let state = self.state.lock();
            state.slots.iter().filter_map(|s| s.db.clone()).collect()
        };
        for db in open {
            db.try_cold_start()?;
        }
        Ok(())
    }

    /// `Stats`-answer summary for a world server. Record count, bounds
    /// and `e_max` are world-level; the structural fields (catalog
    /// version, codec, page and index shape) describe region 0 — the
    /// per-region world totals live in [`Self::region_stats`].
    pub fn stats_summary(&self) -> StorageResult<DbStats> {
        let db = self.region(0)?;
        let mut s = db.stats_summary();
        s.n_records = self.n_records();
        s.bounds = *self.bounds();
        s.e_max = self.e_max();
        Ok(s)
    }

    /// LOD threshold that keeps roughly `frac` of the points, resolved
    /// against region 0's catalog histogram (every tile of a split world
    /// shares the source's LOD distribution).
    pub fn e_for_points_fraction(&self, frac: f64) -> StorageResult<f64> {
        Ok(self.region(0)?.e_for_points_fraction(frac))
    }

    /// Viewpoint-independent cross-tile query in flat canonical form:
    /// fan the query plane out to every overlapping region, merge the
    /// per-region fetches (ids deduplicated in ascending region order),
    /// and run the single-store cut on the union.
    pub fn try_vi_query_flat_counted(
        &self,
        roi: &Rect,
        e: f64,
        counters: &mut FetchCounters,
    ) -> StorageResult<(ViFlatResult, IntegrityReport)> {
        self.try_vi_query_flat_scoped(roi, e, None, counters)
    }

    /// [`Self::try_vi_query_flat_counted`] restricted to one region
    /// index when `scope` is set (the wire protocol's region scope).
    pub fn try_vi_query_flat_scoped(
        &self,
        roi: &Rect,
        e: f64,
        scope: Option<usize>,
        counters: &mut FetchCounters,
    ) -> StorageResult<(ViFlatResult, IntegrityReport)> {
        let e = self.clamp_e(e);
        let plane = Box3::prism(*roi, e, e);
        let mut idxs = self.regions_for(&plane)?;
        if let Some(s) = scope {
            idxs.retain(|&i| i == s);
        }
        let fetched = par_map(&idxs, self.opts.threads, |&i| {
            self.fetch_plane_region(i, &plane)
        });
        let mut report = IntegrityReport::default();
        let mut merged = FetchedSet::new();
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        let mut total_fetched = 0usize;
        for (&i, r) in idxs.iter().zip(fetched) {
            let (set, rep, ctr) = r?;
            report.merge(rep);
            counters.merge(&ctr);
            total_fetched += set.len();
            let meta = &self.regions[i];
            for s in 0..set.len() {
                let node = remap_node(set.nodes[s], meta.id_base, meta.offset);
                if seen.insert(node.id) {
                    merged.push(
                        node,
                        set.conn_of(s).iter().map(|&c| remap_id(c, meta.id_base)),
                    );
                }
            }
        }
        let (nodes, faces) = uniform_cut(&merged, roi, e);
        Ok((
            ViFlatResult {
                nodes,
                faces,
                fetched_records: total_fetched,
            },
            report,
        ))
    }

    fn fetch_plane_region(
        &self,
        idx: usize,
        plane: &Box3,
    ) -> StorageResult<(FetchedSet, IntegrityReport, FetchCounters)> {
        let db = self.region(idx)?;
        self.counters[idx].queries.fetch_add(1, Ordering::Relaxed);
        let local = plane.translated_xy(neg(self.regions[idx].offset));
        let mut rep = IntegrityReport::default();
        let mut ctr = FetchCounters::default();
        let set = db.fetch_box_flat_counted(&local, &mut rep, &mut ctr)?;
        Ok((set, rep, ctr))
    }

    /// World-level multi-base plan: the same staircase candidates as the
    /// single-store planner (equal strips along the LOD gradient, powers
    /// of two up to `max_cubes`), costed by summing each overlapping
    /// region's union page count plus the per-cube descent overhead.
    /// Deterministic for a given open world — the cost models are built
    /// from catalog statistics, not from cache state.
    pub fn plan_multi_base(&self, q: &VdQuery, max_cubes: usize) -> StorageResult<Vec<Rect>> {
        self.plan_multi_base_scoped(q, max_cubes, None)
    }

    fn plan_multi_base_scoped(
        &self,
        q: &VdQuery,
        max_cubes: usize,
        scope: Option<usize>,
    ) -> StorageResult<Vec<Rect>> {
        let overhead_per_cube = 3.0;
        let along_x = q.target.dir.x.abs() >= q.target.dir.y.abs();
        let probe = Box3::prism(q.roi, 0.0, self.e_cap());
        let mut idxs = self.regions_for(&probe)?;
        if let Some(s) = scope {
            idxs.retain(|&i| i == s);
        }
        let mut best: Vec<Rect> = vec![q.roi];
        let mut best_cost = f64::INFINITY;
        let mut n = 1usize;
        while n <= max_cubes.max(1) {
            let strips = equal_strips(&q.roi, n, along_x);
            let cubes: Vec<Box3> = strips
                .iter()
                .map(|r| {
                    let (lo, hi) = q.e_range(r);
                    Box3::prism(*r, lo, self.clamp_e(hi))
                })
                .collect();
            let mut cost = overhead_per_cube * (n as f64 - 1.0);
            for &i in &idxs {
                let db = self.region(i)?;
                let local: Vec<Box3> = self.cubes_for_region(i, &cubes);
                if !local.is_empty() {
                    cost += db.cost_model().count_union(&local) as f64;
                }
            }
            if cost < best_cost {
                best_cost = cost;
                best = strips;
            }
            n *= 2;
        }
        Ok(best)
    }

    /// The world-frame cubes that can hold records of region `idx`,
    /// translated into its frame. Dropping non-overlapping cubes is
    /// exact: a record's vertical segment sits at its plan-view
    /// position, which lies inside the region's footprint.
    fn cubes_for_region(&self, idx: usize, cubes: &[Box3]) -> Vec<Box3> {
        let meta = &self.regions[idx];
        let wb = meta.world_bounds();
        cubes
            .iter()
            .filter(|c| {
                let r =
                    Rect::from_corners(Vec2::new(c.min.x, c.min.y), Vec2::new(c.max.x, c.max.y));
                wb.intersects(&r)
            })
            .map(|c| c.translated_xy(neg(meta.offset)))
            .collect()
    }

    /// Viewpoint-dependent cross-tile query with the world's own plan.
    pub fn try_vd_query_counted(
        &self,
        q: &VdQuery,
        policy: BoundaryPolicy,
        max_cubes: usize,
        counters: &mut FetchCounters,
    ) -> StorageResult<(VdResult, IntegrityReport)> {
        self.try_vd_query_scoped(q, policy, max_cubes, None, counters)
    }

    /// [`Self::try_vd_query_counted`] restricted to one region index
    /// when `scope` is set: the plan is costed against that region alone
    /// and the fan-out skips every other region.
    pub fn try_vd_query_scoped(
        &self,
        q: &VdQuery,
        policy: BoundaryPolicy,
        max_cubes: usize,
        scope: Option<usize>,
        counters: &mut FetchCounters,
    ) -> StorageResult<(VdResult, IntegrityReport)> {
        let strips = self.plan_multi_base_scoped(q, max_cubes, scope)?;
        self.try_vd_strips_scoped(q, policy, &strips, scope, counters)
    }

    /// Viewpoint-dependent cross-tile query over a fixed strip
    /// decomposition: per-region fetches of the same staircase cubes,
    /// merged (ascending region order) and assembled by the exact
    /// single-store topmost-front + refine pipeline. Equivalence tests
    /// feed the same strips to
    /// [`DirectMeshDb::try_vd_multi_base_with_strips_counted`].
    pub fn try_vd_with_strips_counted(
        &self,
        q: &VdQuery,
        policy: BoundaryPolicy,
        strips: &[Rect],
        counters: &mut FetchCounters,
    ) -> StorageResult<(VdResult, IntegrityReport)> {
        self.try_vd_strips_scoped(q, policy, strips, None, counters)
    }

    fn try_vd_strips_scoped(
        &self,
        q: &VdQuery,
        policy: BoundaryPolicy,
        strips: &[Rect],
        scope: Option<usize>,
        counters: &mut FetchCounters,
    ) -> StorageResult<(VdResult, IntegrityReport)> {
        let mut report = IntegrityReport::default();
        let mut cubes = Vec::with_capacity(strips.len());
        for rect in strips {
            let (lo, hi) = q.e_range(rect);
            cubes.push(Box3::prism(*rect, lo, self.clamp_e(hi)));
        }
        let mut idxs: Vec<usize> = Vec::new();
        for c in &cubes {
            idxs.extend(self.regions_for(c)?);
        }
        idxs.sort_unstable();
        idxs.dedup();
        if let Some(s) = scope {
            idxs.retain(|&i| i == s);
        }

        let fetched = par_map(&idxs, self.opts.threads, |&i| {
            self.fetch_cubes_region(i, &cubes)
        });
        let mut all: FxHashMap<u32, DmRecord> = FxHashMap::default();
        let mut total_fetched = 0usize;
        for (&i, r) in idxs.iter().zip(fetched) {
            let (recs, rep, ctr) = r?;
            report.merge(rep);
            counters.merge(&ctr);
            total_fetched += recs.len();
            let meta = &self.regions[i];
            for rec in recs {
                let rec = remap_record(rec, meta.id_base, meta.offset);
                all.entry(rec.node.id).or_insert(rec);
            }
        }

        let recs: Vec<DmRecord> = all.values().cloned().collect();
        let mut front = topmost_front(recs, &q.roi);
        let map: FxHashMap<u32, PmNode> = all.values().map(|r| (r.node.id, r.node)).collect();
        let mut source = WorldSource {
            world: self,
            map,
            policy,
            misses_fetched: 0,
            fetch_errors: 0,
            first_error: None,
        };
        let retries_before = dm_storage::thread_retries();
        let stats = refine(&mut front, &mut source, &q.target);
        report.retries += dm_storage::thread_retries() - retries_before;
        report.points_lost += source.fetch_errors as u64;
        if let Some(e) = &source.first_error {
            if report.errors.len() < IntegrityReport::MAX_ERRORS {
                report.errors.push(format!("boundary fetch: {e}"));
            }
        }
        Ok((
            VdResult {
                front,
                refine: stats,
                fetched_records: total_fetched,
                cubes,
                boundary_fetches: source.misses_fetched,
            },
            report,
        ))
    }

    fn fetch_cubes_region(
        &self,
        idx: usize,
        cubes: &[Box3],
    ) -> StorageResult<(Vec<DmRecord>, IntegrityReport, FetchCounters)> {
        let db = self.region(idx)?;
        self.counters[idx].queries.fetch_add(1, Ordering::Relaxed);
        let local = self.cubes_for_region(idx, cubes);
        let mut rep = IntegrityReport::default();
        let mut ctr = FetchCounters::default();
        let recs = if local.is_empty() {
            Vec::new()
        } else {
            db.fetch_boxes_counted(&local, &mut rep, &mut ctr)?
        };
        Ok((recs, rep, ctr))
    }

    /// Fetch one record by *world* id, probing regions in ascending
    /// order. Worlds assembled from independent stores carry disjoint
    /// `[id_base, id_base + n_records)` ranges, so at most one region is
    /// opened; split worlds share the id space (`id_base == 0`) and fall
    /// back to an in-order probe.
    pub fn try_fetch_by_id(&self, id: u32) -> StorageResult<Option<DmRecord>> {
        let ranged = self.ranged_ids();
        for (i, meta) in self.regions.iter().enumerate() {
            if id < meta.id_base {
                continue;
            }
            let local = id - meta.id_base;
            if ranged && local >= meta.n_records {
                continue;
            }
            let db = self.region(i)?;
            if let Some(rec) = db.try_fetch_by_id(local)? {
                return Ok(Some(remap_record(rec, meta.id_base, meta.offset)));
            }
        }
        Ok(None)
    }

    /// Whether the regions' id ranges are pairwise disjoint (assembled
    /// worlds), enabling direct region lookup by id.
    fn ranged_ids(&self) -> bool {
        let mut ranges: Vec<(u64, u64)> = self
            .regions
            .iter()
            .map(|m| {
                (
                    u64::from(m.id_base),
                    u64::from(m.id_base) + u64::from(m.n_records),
                )
            })
            .collect();
        ranges.sort_unstable();
        ranges.windows(2).all(|w| w[0].1 <= w[1].0)
    }
}

/// A [`RecordSource`] for world-frame refinement: the merged fetch map
/// first, then (under [`BoundaryPolicy::FetchOnMiss`]) a world
/// fetch-by-id — mirroring the single-store `DbSource` fall-through so
/// split worlds refine identically.
struct WorldSource<'a> {
    world: &'a WorldDb,
    map: FxHashMap<u32, PmNode>,
    policy: BoundaryPolicy,
    misses_fetched: usize,
    fetch_errors: usize,
    first_error: Option<StorageError>,
}

impl RecordSource for WorldSource<'_> {
    fn fetch(&mut self, id: u32) -> Option<PmNode> {
        if let Some(n) = self.map.get(&id) {
            return Some(*n);
        }
        match self.policy {
            BoundaryPolicy::Skip => None,
            BoundaryPolicy::FetchOnMiss => match self.world.try_fetch_by_id(id) {
                Ok(Some(rec)) => {
                    self.misses_fetched += 1;
                    self.map.insert(id, rec.node);
                    Some(rec.node)
                }
                Ok(None) => None,
                Err(e) => {
                    self.fetch_errors += 1;
                    if self.first_error.is_none() {
                        self.first_error = Some(e);
                    }
                    None
                }
            },
        }
    }
}

/// A server-side viewpoint-dependent session over a world: every frame
/// re-plans and re-queries (cross-tile results stay canonical for the
/// delta streamer), while the regions the session has touched stay
/// *pinned* so LRU pressure from other clients cannot close a store
/// this walkthrough is about to revisit. Pins are released by
/// [`Self::close`] — the server calls it on `CloseSession` and on
/// connection teardown.
pub struct WorldSession {
    policy: BoundaryPolicy,
    max_cubes: usize,
    pinned: Vec<usize>,
}

impl WorldSession {
    pub fn new(policy: BoundaryPolicy, max_cubes: usize) -> WorldSession {
        WorldSession {
            policy,
            max_cubes,
            pinned: Vec::new(),
        }
    }

    /// Region indices this session currently pins (the latest frame's
    /// region set), in first-touch order.
    pub fn regions(&self) -> &[usize] {
        &self.pinned
    }

    /// Answer one frame, pinning every region the frame's ROI reaches
    /// before querying — so the handles cannot be evicted mid-frame or
    /// between consecutive frames over the same ground. Pins on regions
    /// the viewer has left are released after the frame: a session
    /// sweeping a large world protects only the terrain under it, and
    /// never wedges LRU eviction by accumulating the whole world.
    pub fn frame(
        &mut self,
        world: &WorldDb,
        q: &VdQuery,
        counters: &mut FetchCounters,
    ) -> StorageResult<(VdResult, IntegrityReport)> {
        let probe = Box3::prism(q.roi, 0.0, world.e_cap());
        let needed = world.regions_for(&probe)?;
        for &i in &needed {
            if !self.pinned.contains(&i) {
                world.pin_region(i);
                self.pinned.push(i);
            }
        }
        let res = world.try_vd_query_counted(q, self.policy, self.max_cubes, counters);
        let mut kept = Vec::with_capacity(needed.len());
        for i in self.pinned.drain(..) {
            if needed.contains(&i) {
                kept.push(i);
            } else {
                world.unpin_region(i);
            }
        }
        self.pinned = kept;
        res
    }

    /// Release every pin this session holds. Idempotent.
    pub fn close(&mut self, world: &WorldDb) {
        for i in self.pinned.drain(..) {
            world.unpin_region(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{split_world_in_memory, write_split_world};
    use dm_core::DmBuildOptions;
    use dm_mtm::builder::{build_pm, PmBuildConfig};
    use dm_storage::MemStore;
    use dm_terrain::{generate, TriMesh};

    fn build_db(seed: u64, side: usize) -> DirectMeshDb {
        let hf = generate::fractal_terrain(side, side, seed);
        let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());
        let pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), 8192));
        DirectMeshDb::build(pool, &pm, &DmBuildOptions::default())
    }

    #[test]
    fn split_world_vi_matches_single_store() {
        let db = build_db(7, 33);
        let world = split_world_in_memory(
            &db,
            2,
            2,
            4096,
            &DmBuildOptions::default(),
            WorldOptions::default(),
        )
        .unwrap();
        assert_eq!(world.n_regions(), 4);
        assert_eq!(world.n_records() as usize, db.n_records);
        for frac in [0.1, 0.4, 0.9] {
            let e = db.e_for_points_fraction(frac);
            let roi = db.bounds;
            let mut c1 = FetchCounters::default();
            let mut c2 = FetchCounters::default();
            let (single, r1) = db.try_vi_query_flat_counted(&roi, e, &mut c1).unwrap();
            let (tiled, r2) = world.try_vi_query_flat_counted(&roi, e, &mut c2).unwrap();
            assert!(r1.is_clean() && r2.is_clean());
            assert_eq!(
                single.nodes, tiled.nodes,
                "vertex sets differ at frac {frac}"
            );
            assert_eq!(single.faces, tiled.faces, "faces differ at frac {frac}");
            assert_eq!(single.fetched_records, tiled.fetched_records);
        }
    }

    #[test]
    fn split_world_vd_matches_single_store_with_same_strips() {
        let db = build_db(11, 33);
        let world = split_world_in_memory(
            &db,
            2,
            2,
            4096,
            &DmBuildOptions::default(),
            WorldOptions::default(),
        )
        .unwrap();
        let roi = db.bounds;
        let eye = Vec2::new(roi.min.x - 1.0, roi.center().y);
        let q = VdQuery::from_viewpoint(roi, eye, db.e_max / 40.0, db.e_max);
        let strips = world.plan_multi_base(&q, 8).unwrap();
        let mut c1 = FetchCounters::default();
        let mut c2 = FetchCounters::default();
        for policy in [BoundaryPolicy::Skip, BoundaryPolicy::FetchOnMiss] {
            let (single, r1) = db
                .try_vd_multi_base_with_strips_counted(&q, policy, &strips, &mut c1)
                .unwrap();
            let (tiled, r2) = world
                .try_vd_with_strips_counted(&q, policy, &strips, &mut c2)
                .unwrap();
            assert!(r1.is_clean() && r2.is_clean());
            assert_eq!(single.fetched_records, tiled.fetched_records);
            let (m1, ids1) = single.front.to_trimesh();
            let (m2, ids2) = tiled.front.to_trimesh();
            assert_eq!(ids1, ids2, "vertex ids differ under {policy:?}");
            let verts = |m: &dm_terrain::TriMesh| -> Vec<_> {
                m.live_vertices().map(|v| m.position(v)).collect()
            };
            let tris = |m: &dm_terrain::TriMesh| -> Vec<_> {
                m.live_triangles().map(|t| m.triangle(t)).collect()
            };
            assert_eq!(verts(&m1), verts(&m2));
            assert_eq!(tris(&m1), tris(&m2));
        }
    }

    #[test]
    fn lazy_open_lru_eviction_and_pins() {
        let db = build_db(3, 33);
        let dir = std::env::temp_dir().join(format!("dm_world_lru_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = write_split_world(&db, 2, 2, &dir, &DmBuildOptions::default()).unwrap();
        let world = WorldDb::open(
            &manifest,
            WorldOptions {
                max_open: 2,
                page_budget: 512,
                region_floor: 32,
                ..WorldOptions::default()
            },
        )
        .unwrap();
        assert_eq!(world.open_count(), 0, "regions open lazily");
        // Touch every region in turn: the cap holds and LRU evicts.
        for i in 0..world.n_regions() {
            world.region(i).unwrap();
        }
        assert!(world.open_count() <= 2);
        let stats = world.region_stats();
        let opens: u64 = stats.iter().map(|s| s.opens).sum();
        let evictions: u64 = stats.iter().map(|s| s.evictions).sum();
        assert_eq!(opens, 4);
        assert!(evictions >= 2, "{evictions} evictions");
        // Budgets: every open pool's capacity is at least the floor and
        // the open capacities stay within the budget plus floor slack.
        let open_caps: Vec<usize> = (0..world.n_regions())
            .filter_map(|i| {
                let s = world.state.lock();
                s.slots[i].db.as_ref().map(|db| db.pool().capacity())
            })
            .collect();
        for &c in &open_caps {
            assert!(c >= 32, "capacity {c} below floor");
        }
        // Pin region 0 and hammer the others: 0 must stay open.
        world.region(0).unwrap();
        world.pin_region(0);
        for i in 1..world.n_regions() {
            world.region(i).unwrap();
        }
        assert!(world.region_stats()[0].open, "pinned region was evicted");
        world.unpin_region(0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn session_pins_release_on_close() {
        let db = build_db(5, 33);
        let dir = std::env::temp_dir().join(format!("dm_world_sess_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = write_split_world(&db, 2, 1, &dir, &DmBuildOptions::default()).unwrap();
        let world = WorldDb::open(&manifest, WorldOptions::default()).unwrap();
        let mut sess = WorldSession::new(BoundaryPolicy::Skip, 4);
        let q = VdQuery::from_viewpoint(db.bounds, db.bounds.center(), db.e_max / 20.0, db.e_max);
        let mut ctr = FetchCounters::default();
        let (_res, rep) = sess.frame(&world, &q, &mut ctr).unwrap();
        assert!(rep.is_clean());
        assert!(!sess.regions().is_empty());
        for &i in sess.regions() {
            assert!(world.region_pins(i) > 0);
        }
        sess.close(&world);
        for i in 0..world.n_regions() {
            assert_eq!(world.region_pins(i), 0);
        }
        sess.close(&world); // idempotent
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn world_fetch_by_id_matches_store() {
        let db = build_db(9, 33);
        let world = split_world_in_memory(
            &db,
            2,
            2,
            4096,
            &DmBuildOptions::default(),
            WorldOptions::default(),
        )
        .unwrap();
        for id in [
            0u32,
            5,
            17,
            db.n_records as u32 - 1,
            db.n_records as u32 + 7,
        ] {
            let a = db.try_fetch_by_id(id).unwrap();
            let b = world.try_fetch_by_id(id).unwrap();
            assert_eq!(a, b, "record {id}");
        }
    }
}

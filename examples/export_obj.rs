//! Export terrain approximations at several LODs as Wavefront OBJ files
//! (viewable in Blender, MeshLab, etc.).
//!
//! ```text
//! cargo run --release -p dm-examples --example export_obj [out_dir]
//! ```

use std::sync::Arc;

use dm_core::{DirectMeshDb, DmBuildOptions};
use dm_mtm::builder::{build_pm, PmBuildConfig};
use dm_storage::{BufferPool, MemStore};
use dm_terrain::{generate, obj, TriMesh};

fn main() -> std::io::Result<()> {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/obj".to_string());
    std::fs::create_dir_all(&out_dir)?;

    let hf = generate::crater_terrain(129, 129, 5);
    let mesh = TriMesh::from_heightfield(&hf);
    let pm = build_pm(mesh, &PmBuildConfig::default());
    let pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), 4096));
    let db = DirectMeshDb::build(pool, &pm, &DmBuildOptions::default());

    for (name, keep) in [("fine", 0.6), ("medium", 0.15), ("coarse", 0.03)] {
        let e = db.e_for_points_fraction(keep);
        let res = db.vi_query(&db.bounds, e);
        let (tri_mesh, _) = res.front.to_trimesh();
        tri_mesh.validate().expect("valid mesh");
        let path = format!("{out_dir}/crater_{name}.obj");
        let mut file = std::fs::File::create(&path)?;
        obj::write_obj(&tri_mesh, &mut file)?;
        println!(
            "{path}: {} vertices, {} triangles (e = {:.3})",
            tri_mesh.num_live_vertices(),
            tri_mesh.num_live_triangles(),
            e
        );
    }
    println!("\nopen the files in any OBJ viewer to see the LOD ladder");
    Ok(())
}

//! Flyover: a sequence of viewpoint-dependent queries along a flight
//! path, comparing cold single-base, cold multi-base, and a warm
//! [`NavigationSession`] per frame.
//!
//! The viewer moves across the terrain; each frame asks for a mesh that
//! is fine near the viewer and coarse in the distance (the paper's tilted
//! query plane). Watch the disk-access counts: multi-base fetches several
//! small staircase cubes instead of one tall one, and the session's warm
//! buffer pool amortizes almost everything after the first frame.
//!
//! ```text
//! cargo run --release -p dm-examples --example flyover
//! ```

use std::sync::Arc;

use dm_core::{BoundaryPolicy, DirectMeshDb, DmBuildOptions, NavigationSession, VdQuery};
use dm_geom::{Rect, Vec2};
use dm_mtm::builder::{build_pm, PmBuildConfig};
use dm_mtm::PlaneTarget;
use dm_storage::{BufferPool, MemStore};
use dm_terrain::{generate, TriMesh};

fn main() {
    let hf = generate::crater_terrain(129, 129, 99);
    let mesh = TriMesh::from_heightfield(&hf);
    let pm = build_pm(mesh, &PmBuildConfig::default());
    let pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), 4096));
    let db = DirectMeshDb::build(pool, &pm, &DmBuildOptions::default());
    println!(
        "crater terrain loaded: {} records, e_max {:.2}\n",
        db.n_records, db.e_max
    );

    // The viewer flies south→north; every frame views a window ahead of
    // it with LOD degrading over distance.
    let bounds = db.bounds;
    let window = bounds.height() * 0.35;
    let frames = 8;
    // Build the per-frame queries up front; the cold measurements flush
    // the shared buffer pool, so the warm session runs as a second pass.
    let mut queries: Vec<VdQuery> = Vec::new();
    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "frame", "SB-DA", "MB-DA", "warm-DA", "points", "tris", "cubes"
    );
    for f in 0..frames {
        let y0 = bounds.min.y + (bounds.height() - window) * f as f64 / (frames - 1) as f64;
        let roi = Rect::new(
            Vec2::new(bounds.min.x + bounds.width() * 0.3, y0),
            Vec2::new(bounds.max.x - bounds.width() * 0.3, y0 + window),
        );
        let e_min = db.e_for_points_fraction(0.4); // fine near the viewer
        let e_far = db.e_for_points_fraction(0.05); // coarse in the distance
        let slope = (e_far - e_min).max(0.0) / window;
        let q = VdQuery {
            roi,
            target: PlaneTarget {
                origin: Vec2::new(roi.min.x, y0),
                dir: Vec2::new(0.0, 1.0),
                e_min,
                slope,
                e_max: e_min + slope * window,
            },
        };

        db.cold_start();
        let sb = db.vd_single_base(&q, BoundaryPolicy::Skip);
        let sb_da = db.disk_accesses();

        db.cold_start();
        let mb = db.vd_multi_base(&q, BoundaryPolicy::Skip, 16);
        let mb_da = db.disk_accesses();

        println!(
            "{:>5} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8}",
            f,
            sb_da,
            mb_da,
            "-",
            mb.front.num_vertices(),
            mb.front.num_triangles(),
            mb.cubes.len()
        );
        let (mesh, _) = sb.front.to_trimesh();
        mesh.validate().expect("frame mesh valid");
        queries.push(q);
    }

    // Second pass: the warm navigation session over the same path. Pages
    // fetched for earlier frames stay in the buffer pool, so per-frame
    // disk accesses collapse after frame 0.
    println!("\nwarm navigation session over the same path:");
    db.cold_start();
    let mut session = NavigationSession::new(&db, BoundaryPolicy::FetchOnMiss);
    for (f, q) in queries.iter().enumerate() {
        let warm = session.move_to(q);
        println!(
            "{:>5} {:>10} {:>10} {:>10}",
            f, "-", "-", warm.disk_accesses
        );
        let (mesh, _) = session.front().to_trimesh();
        mesh.validate().expect("warm frame mesh valid");
    }
    println!("\nall frame meshes validated (manifold, CCW, consistent)");
}

//! Quickstart: build a Direct Mesh database from synthetic terrain and
//! run one viewpoint-independent query.
//!
//! ```text
//! cargo run --release -p dm-examples --example quickstart
//! ```

use std::sync::Arc;

use dm_core::{DirectMeshDb, DmBuildOptions};
use dm_geom::Rect;
use dm_mtm::builder::{build_pm, PmBuildConfig};
use dm_storage::{BufferPool, MemStore};
use dm_terrain::{generate, TriMesh};

fn main() {
    // 1. Terrain: a 129×129 fractal heightfield (~16.6k points).
    let hf = generate::fractal_terrain(129, 129, 7);
    println!(
        "terrain: {}×{} samples, z ∈ {:?}",
        hf.width(),
        hf.height(),
        hf.z_range()
    );

    // 2. Multiresolution hierarchy: QEM edge collapses down to a handful
    //    of root vertices, every collapse recorded as a PM node.
    let mesh = TriMesh::from_heightfield(&hf);
    let pm = build_pm(mesh, &PmBuildConfig::default());
    println!(
        "hierarchy: {} nodes ({} leaves, {} roots), max LOD {:.2}",
        pm.hierarchy.len(),
        pm.hierarchy.n_leaves,
        pm.hierarchy.roots.len(),
        pm.hierarchy.e_max
    );

    // 3. The Direct Mesh database: heap table + B+-tree + 3D R*-tree,
    //    every node carrying its LOD interval and connection list.
    let pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), 4096));
    let db = DirectMeshDb::build(pool, &pm, &DmBuildOptions::default());
    println!(
        "database: {} records over {} pages",
        db.n_records,
        db.pool().num_pages()
    );

    // 4. A viewpoint-independent query: centre 10% of the terrain at a
    //    mid LOD — one range query, topology from the connection lists.
    let roi = Rect::centered_square(db.bounds.center(), db.bounds.width() * 0.32);
    // Ask for the LOD that keeps ~25 % of the original points.
    let e = db.e_for_points_fraction(0.25);
    db.cold_start();
    let res = db.vi_query(&roi, e);
    println!(
        "query: ROI 10% at LOD {:.3} → {} points, {} triangles, {} disk accesses",
        e,
        res.points,
        res.front.num_triangles(),
        db.disk_accesses()
    );

    // 5. The result is a real mesh: validate and show a corner of it.
    let (mesh, ids) = res.front.to_trimesh();
    mesh.validate()
        .expect("reconstructed mesh is a valid triangulation");
    println!("mesh valid; first vertices: {:?}", &ids[..ids.len().min(5)]);
}

//! Terrain analysis: accuracy vs size across LOD levels.
//!
//! Retrieves the same region at a ladder of LODs and measures each
//! approximation against the source heightfield: vertical RMSE and
//! maximum error fall as the LOD value (error bound) falls, while point
//! counts and retrieval cost rise — the multiresolution trade-off the
//! whole structure exists to navigate.
//!
//! ```text
//! cargo run --release -p dm-examples --example terrain_analysis
//! ```

use std::sync::Arc;

use dm_core::{DirectMeshDb, DmBuildOptions};
use dm_mtm::builder::{build_pm, PmBuildConfig};
use dm_storage::{BufferPool, MemStore};
use dm_terrain::{generate, metrics, TriMesh};

fn main() {
    let hf = generate::fractal_terrain(129, 129, 21);
    let mesh = TriMesh::from_heightfield(&hf);
    let pm = build_pm(mesh, &PmBuildConfig::default());
    let pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), 4096));
    let db = DirectMeshDb::build(pool, &pm, &DmBuildOptions::default());

    let (zlo, zhi) = hf.z_range();
    println!(
        "terrain 129×129, relief {:.1}; querying the full extent at 6 LODs\n",
        zhi - zlo
    );
    println!(
        "{:>10} {:>8} {:>8} {:>10} {:>10} {:>8}",
        "LOD(e)", "points", "tris", "rmse", "max-err", "DA"
    );
    for keep in [1.0, 0.5, 0.25, 0.1, 0.05, 0.01] {
        let e = db.e_for_points_fraction(keep);
        db.cold_start();
        let res = db.vi_query(&db.bounds, e);
        let da = db.disk_accesses();
        let (tri_mesh, _) = res.front.to_trimesh();
        tri_mesh.validate().expect("valid approximation");
        let err = metrics::mesh_error(&tri_mesh, &hf, 2);
        println!(
            "{:>10.3} {:>8} {:>8} {:>10.3} {:>10.3} {:>8}",
            e,
            res.points,
            res.front.num_triangles(),
            err.rmse,
            err.max,
            da
        );
    }
    println!("\nthe error bound e is honoured: rmse and max error shrink with e");
}

#!/usr/bin/env bash
# The full local gate: formatting, lints, release build, tests.
# Run from anywhere; operates on the repository this script lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test --workspace -q

echo "== cargo test (single-threaded harness)"
# Concurrency bugs can hide behind the test harness's own parallelism
# (or be provoked by it); the suite must pass both ways.
cargo test --workspace -q -- --test-threads=1

echo "== benches compile"
cargo build --release --benches --workspace

echo "== navigation bench smoke (tiny terrain, short path)"
# The bench runs with the package directory as cwd; anchor the output
# inside the workspace target dir so smoke runs never clobber the
# committed BENCH_navigation.json.
DM_SCALE=ci DM_NAV_FRAMES=4 DM_NAV_OUT="$PWD/target/BENCH_navigation.ci.json" \
    cargo bench -p dm-bench --bench navigation >/dev/null

echo "ci: all green"

#!/usr/bin/env bash
# The full local gate: formatting, lints, release build, tests.
# Run from anywhere; operates on the repository this script lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace

echo "== examples compile"
cargo build --release --workspace --examples

echo "== cargo test"
cargo test --workspace -q

echo "== cargo test (single-threaded harness)"
# Concurrency bugs can hide behind the test harness's own parallelism
# (or be provoked by it); the suite must pass both ways.
cargo test --workspace -q -- --test-threads=1

echo "== adversarial-client suite (default + single-threaded harness)"
# The stalled-reader / trickle-writer / garbage-sender tests exercise
# reactor scheduling, so run them explicitly under both harness modes:
# parallel (other tests competing for the core) and serial (no cover
# from harness concurrency).
cargo test -q -p dm-integration --test server_loopback
cargo test -q -p dm-integration --test server_loopback -- --test-threads=1
cargo test -q -p dm-integration --test proptest_server_pipeline -- --test-threads=1

echo "== benches compile"
cargo build --release --benches --workspace

echo "== navigation bench smoke (tiny terrain, short path)"
# The bench runs with the package directory as cwd; anchor the output
# inside the workspace target dir so smoke runs never clobber the
# committed BENCH_navigation.json. The bench itself asserts mesh
# equality across the full / incremental / auto plan modes.
DM_SCALE=ci DM_NAV_FRAMES=4 DM_NAV_OUT="$PWD/target/BENCH_navigation.ci.json" \
    cargo bench -p dm-bench --bench navigation >/dev/null

echo "== navigation regression guard (committed official run)"
# Hold the committed 513²/32-frame run to the PR's acceptance bar: warm
# incremental frames must beat full requery on wall-clock (the planner
# exists so delta execution never costs more than a cold requery), the
# auto planner must be no slower than full requery, and incremental
# frames must examine no more records than full requery — the old
# per-sliver fetch path examined ~1.5× MORE (504k vs 346k warm total),
# and this guard fails the build if that plateau returns.
python3 - "$PWD/BENCH_navigation.json" << 'PY'
import json, sys
base = json.load(open(sys.argv[1]))["warm_totals"]
full, incr, auto = base["full_requery"], base["incremental"], base["auto"]
checks = [
    ("incremental secs", incr["secs"], "<=", full["secs"]),
    ("auto secs", auto["secs"], "<=", full["secs"]),
    ("incremental examined", incr["examined_records"],
     "<=", full["examined_records"]),
]
bad = [f"{k}: {v:.4f} not {op} {lim:.4f}"
       for k, v, op, lim in checks if not v <= lim]
if bad:
    sys.exit("navigation regression guard FAILED\n  " + "\n  ".join(bad))
print("navigation guard ok: " +
      ", ".join(f"{k}={v:.4f}" for k, v, _, _ in checks))
PY

echo "== query planner smoke (walkthrough --plan / explain on a tiny store)"
# End-to-end through the installed binary: the three plan modes must
# print identical per-frame vertex columns, and `dm explain` must make
# a decision for every frame.
PLAN_DIR=$(mktemp -d "${TMPDIR:-/tmp}/dm-plan-smoke.XXXXXX")
DM=target/release/dm
"$DM" generate --kind mining --size 65 --seed 9 -o "$PLAN_DIR/t.dmh" >/dev/null
"$DM" build "$PLAN_DIR/t.dmh" -o "$PLAN_DIR/t.dmdb" >/dev/null
for mode in auto incremental full; do
    "$DM" walkthrough "$PLAN_DIR/t.dmdb" --frames 6 --window 0.4 --plan "$mode" \
        | awk 'NR>2 && $1 ~ /^[0-9]+$/ { print $1, $8 }' > "$PLAN_DIR/$mode.verts"
done
diff "$PLAN_DIR/auto.verts" "$PLAN_DIR/incremental.verts" \
    || { echo "auto and incremental walkthroughs disagree"; exit 1; }
diff "$PLAN_DIR/auto.verts" "$PLAN_DIR/full.verts" \
    || { echo "auto and full walkthroughs disagree"; exit 1; }
"$DM" explain "$PLAN_DIR/t.dmdb" --frames 6 --window 0.4 \
    | grep "chosen: .* incremental frame(s), .* full-requery frame(s)" >/dev/null \
    || { echo "dm explain printed no decision summary"; exit 1; }
rm -rf "$PLAN_DIR"

echo "== compact codec bench smoke + size-regression guard"
# Smoke-run the codec comparison on the tiny terrain (the bench itself
# asserts byte-identical query results between the v2 and v3 stores),
# then hold the small-scale build to the committed official run's
# thresholds: bytes-per-record must not regress past baseline × 1.15,
# and the VI/VD heap-page savings must stay within 10 points of the
# official numbers. The margins absorb scale effects (65² here vs the
# official 513²), not real regressions — dropping the placement logic
# trips the VI/VD floors, bloating the codec trips the byte ceiling.
DM_SCALE=ci DM_COMPACT_OUT="$PWD/target/BENCH_compact.ci.json" \
    cargo bench -p dm-bench --bench compact >/dev/null
python3 - "$PWD/BENCH_compact.json" "$PWD/target/BENCH_compact.ci.json" << 'PY'
import json, sys
base = json.load(open(sys.argv[1]))
ci = json.load(open(sys.argv[2]))
checks = [
    ("bytes_per_record_v3", ci["bytes_per_record_v3"],
     "<=", base["bytes_per_record_v3"] * 1.15),
    ("vi_heap_saved_pct", ci["vi_heap_saved_pct"],
     ">=", base["vi_heap_saved_pct"] - 10.0),
    ("vd_heap_saved_pct", ci["vd_heap_saved_pct"],
     ">=", base["vd_heap_saved_pct"] - 10.0),
]
bad = [f"{k}: {v:.2f} not {op} {lim:.2f}"
       for k, v, op, lim in checks
       if not (v <= lim if op == "<=" else v >= lim)]
if bad:
    sys.exit("size-regression guard FAILED\n  " + "\n  ".join(bad))
print("size-regression guard ok: " +
      ", ".join(f"{k}={v:.2f}" for k, v, _, _ in checks))
PY

echo "== edits bench smoke (live write path, tiny terrain)"
# The bench itself asserts the injected crash fails the edit and that
# exactly one WAL entry is replayed on the recovering reopen; anchored
# output keeps smoke runs from clobbering the committed BENCH_edits.json.
DM_SCALE=ci DM_EDITS_OUT="$PWD/target/BENCH_edits.ci.json" \
    cargo bench -p dm-bench --bench edits >/dev/null

echo "== crash-recovery smoke (patch --kill-after / recover / verify / query equality)"
# Two byte-identical stores get the same edit: one cleanly, one dying
# mid-commit (the store is killed after one durable write). After
# `dm recover` replays the WAL tail, both must scrub clean and answer
# queries identically.
CRASH_DIR=$(mktemp -d "${TMPDIR:-/tmp}/dm-crash-smoke.XXXXXX")
DM=target/release/dm
"$DM" generate --kind mining --size 65 --seed 11 -o "$CRASH_DIR/t.dmh" >/dev/null
"$DM" build "$CRASH_DIR/t.dmh" -o "$CRASH_DIR/a.dmdb" >/dev/null
cp "$CRASH_DIR/a.dmdb" "$CRASH_DIR/b.dmdb"
"$DM" patch "$CRASH_DIR/a.dmdb" --region 20,20,44,44 --raise 3.5 >/dev/null
if "$DM" patch "$CRASH_DIR/b.dmdb" --region 20,20,44,44 --raise 3.5 --kill-after 1 \
    >/dev/null 2>&1; then
    echo "killed patch unexpectedly succeeded"; exit 1
fi
"$DM" recover "$CRASH_DIR/b.dmdb" >/dev/null
"$DM" verify "$CRASH_DIR/a.dmdb" >/dev/null
"$DM" verify "$CRASH_DIR/b.dmdb" >/dev/null
diff <("$DM" query "$CRASH_DIR/a.dmdb" --keep 0.5) \
     <("$DM" query "$CRASH_DIR/b.dmdb" --keep 0.5) \
    || { echo "recovered store answers differently from the clean edit"; exit 1; }
rm -rf "$CRASH_DIR"

echo "== server bench smoke (loopback, tiny terrain)"
# Asserts serial cold remote ≡ local inside the bench itself; anchored
# output keeps smoke runs from clobbering the committed BENCH_server.json.
DM_SCALE=ci DM_SERVER_OUT="$PWD/target/BENCH_server.ci.json" \
    cargo bench -p dm-bench --bench server >/dev/null

echo "== streaming bench smoke + wire-cost regression guard"
# Smoke-run the delta-streaming bench on the tiny terrain (the bench
# itself asserts lockstep bit-identity for every streamed frame and the
# scratch-buffer steady state), then hold the committed official run to
# the PR's acceptance bar: the delta transport must ship at most half
# the full transport's bytes on the warm 32-frame walkthrough, auto must
# never ship more than full, and chunked time-to-first-triangle must not
# exceed the monolithic response time.
DM_SCALE=ci DM_STREAM_OUT="$PWD/target/BENCH_streaming.ci.json" \
    cargo bench -p dm-bench --bench streaming >/dev/null
python3 - "$PWD/BENCH_streaming.json" << 'PY'
import json, sys
base = json.load(open(sys.argv[1]))
full, delta, auto = base["full_bytes"], base["delta_bytes"], base["auto_bytes"]
ttft = base["ttft"]
checks = [
    ("delta_bytes", delta, "<=", 0.5 * full),
    ("auto_bytes", auto, "<=", full),
    ("ttft_chunked_us", ttft["chunked_us"], "<=", ttft["monolithic_us"]),
]
bad = [f"{k}: {v:.0f} not {op} {lim:.0f}"
       for k, v, op, lim in checks if not v <= lim]
if not base.get("lockstep_bit_identity"):
    bad.append("lockstep_bit_identity missing or false")
if bad:
    sys.exit("streaming regression guard FAILED\n  " + "\n  ".join(bad))
print("streaming guard ok: "
      f"delta/full={delta / max(full, 1):.3f}, "
      f"ttft chunked/monolithic={ttft['chunked_us'] / max(ttft['monolithic_us'], 1):.3f}")
PY

echo "== world bench smoke + region-eviction regression guard"
# Smoke-run the multi-terrain world bench on tiny tiles (the bench
# itself asserts lazy open, the handle cap, and that hot-region traffic
# cannot evict a cold region's pages), then hold the committed official
# run to the PR's acceptance bar: each region opened exactly once per
# cold sweep, the open-handle cap respected throughout, LRU evictions
# actually exercised, warm hits present, and the weighted pool smaller
# than the world so the isolation result is meaningful.
DM_SCALE=ci DM_WORLD_OUT="$PWD/target/BENCH_world.ci.json" \
    cargo bench -p dm-bench --bench world >/dev/null
python3 - "$PWD/BENCH_world.json" << 'PY'
import json, sys
base = json.load(open(sys.argv[1]))
cold, warm, iso = base["cold"], base["warm"], base["isolation"]
bad = []
if cold["opens"] != base["regions"]:
    bad.append(f"cold sweep opened {cold['opens']} regions, want {base['regions']} (lazy open broken)")
if cold["max_open_seen"] > base["max_open"] or warm["max_open_seen"] > base["max_open"]:
    bad.append(f"handle cap {base['max_open']} violated "
               f"(cold {cold['max_open_seen']}, warm {warm['max_open_seen']})")
if cold["evictions"] == 0:
    bad.append("cold sweep triggered no LRU evictions")
if warm["hits"] == 0:
    bad.append("warm sweep produced no buffer-pool hits")
if not iso["held"] or iso["cold_resident_after"] != iso["cold_resident_before"]:
    bad.append(f"weighted pool isolation broken: cold residency "
               f"{iso['cold_resident_before']} -> {iso['cold_resident_after']}")
if base["page_budget"] >= base["total_pages"]:
    bad.append("pool budget covers the whole world; eviction pressure untested")
if not base.get("lazy_open") or not base.get("cap_respected"):
    bad.append("lazy_open / cap_respected flags missing or false")
if bad:
    sys.exit("world regression guard FAILED\n  " + "\n  ".join(bad))
print("world guard ok: "
      f"{base['regions']} regions, {cold['evictions']} cold evictions, "
      f"{warm['hits']} warm hits, isolation held "
      f"({iso['cold_resident_before']} pages untouched)")
PY

echo "== server smoke (serve / remote-query / remote-shutdown over loopback)"
# End-to-end through the installed binaries: build a tiny database, serve
# it in the background, run a remote batch query verified bit-for-bit
# against a local open of the same file, then shut the server down over
# the wire and check it drains cleanly.
SMOKE_DIR=$(mktemp -d "${TMPDIR:-/tmp}/dm-server-smoke.XXXXXX")
DM=target/release/dm
trap '{ [ -n "${SERVE_PID:-}" ] && kill "$SERVE_PID"; rm -rf "$SMOKE_DIR"; } 2>/dev/null || true' EXIT
"$DM" generate --kind crater --size 65 --seed 7 -o "$SMOKE_DIR/t.dmh" >/dev/null
"$DM" build "$SMOKE_DIR/t.dmh" -o "$SMOKE_DIR/t.dmdb" >/dev/null
"$DM" serve "$SMOKE_DIR/t.dmdb" --addr 127.0.0.1:0 --port-file "$SMOKE_DIR/port" \
    > "$SMOKE_DIR/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -s "$SMOKE_DIR/port" ] && break; sleep 0.1; done
[ -s "$SMOKE_DIR/port" ] || { echo "server never published its port"; cat "$SMOKE_DIR/serve.log"; exit 1; }
ADDR=$(cat "$SMOKE_DIR/port")
"$DM" remote-query --addr "$ADDR" --cold --verify-local "$SMOKE_DIR/t.dmdb"
"$DM" remote-query --addr "$ADDR" --batch 2 --verify-local "$SMOKE_DIR/t.dmdb"
"$DM" remote-query --addr "$ADDR" --pipeline 4 --verify-local "$SMOKE_DIR/t.dmdb"
# grep without -q: consume the whole stream so the writer never takes
# a SIGPIPE when the match lands before its last line (set -o pipefail).
"$DM" remote-query --addr "$ADDR" --chunked --verify-local "$SMOKE_DIR/t.dmdb" \
    | grep "^chunked:" >/dev/null || { echo "chunked remote-query printed no chunk stats"; exit 1; }
"$DM" remote-walkthrough --addr "$ADDR" --frames 4 --verify-local "$SMOKE_DIR/t.dmdb" >/dev/null
# Delta streaming end to end: every reconstructed frame must verify
# bit-for-bit against the lockstep local session, and a multi-frame walk
# must actually ship delta frames.
"$DM" remote-walkthrough --addr "$ADDR" --frames 6 --stream delta \
    --verify-local "$SMOKE_DIR/t.dmdb" > "$SMOKE_DIR/delta.log"
grep -q "verified bit-for-bit" "$SMOKE_DIR/delta.log" \
    || { echo "delta walkthrough did not verify"; cat "$SMOKE_DIR/delta.log"; exit 1; }
grep -qE "5/6 delta frames" "$SMOKE_DIR/delta.log" \
    || { echo "delta walkthrough shipped no deltas"; cat "$SMOKE_DIR/delta.log"; exit 1; }
"$DM" stats --addr "$ADDR" | grep "delta frames" >/dev/null \
    || { echo "remote stats printed no streaming counters"; exit 1; }
"$DM" remote-shutdown --addr "$ADDR"
wait "$SERVE_PID"
SERVE_PID=
grep -q "server drained" "$SMOKE_DIR/serve.log" || { echo "server did not drain cleanly"; cat "$SMOKE_DIR/serve.log"; exit 1; }
grep -q "wire totals:" "$SMOKE_DIR/serve.log" || { echo "server drain printed no wire totals"; cat "$SMOKE_DIR/serve.log"; exit 1; }

echo "== world smoke (world-build / world-verify / serve --world over loopback)"
# Assemble two independent stores into a world manifest, scrub it, serve
# it with a deliberately tiny handle cap so lazy open and LRU eviction
# both fire, then check the region dimension end to end: region-scoped
# remote queries, the per-region stats table, and world totals on drain.
"$DM" generate --kind mining --size 65 --seed 11 -o "$SMOKE_DIR/a.dmh" >/dev/null
"$DM" build "$SMOKE_DIR/a.dmh" -o "$SMOKE_DIR/a.dmdb" >/dev/null
"$DM" world-build "$SMOKE_DIR/t.dmdb" "$SMOKE_DIR/a.dmdb" -o "$SMOKE_DIR/w.dmwm" \
    | grep "2 regions" >/dev/null || { echo "world-build did not report 2 regions"; exit 1; }
"$DM" world-verify "$SMOKE_DIR/w.dmwm" \
    | grep "ok" >/dev/null || { echo "world-verify reported no healthy region"; exit 1; }
"$DM" serve "$SMOKE_DIR/w.dmwm" --world --max-open 1 \
    --addr 127.0.0.1:0 --port-file "$SMOKE_DIR/wport" \
    > "$SMOKE_DIR/wserve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -s "$SMOKE_DIR/wport" ] && break; sleep 0.1; done
[ -s "$SMOKE_DIR/wport" ] || { echo "world server never published its port"; cat "$SMOKE_DIR/wserve.log"; exit 1; }
WADDR=$(cat "$SMOKE_DIR/wport")
"$DM" remote-query --addr "$WADDR" >/dev/null
"$DM" remote-query --addr "$WADDR" --region 0 >/dev/null
"$DM" remote-query --addr "$WADDR" --region 1 >/dev/null
"$DM" stats --addr "$WADDR" | grep -E "regions: +2 " >/dev/null \
    || { echo "remote stats printed no region table"; exit 1; }
"$DM" remote-shutdown --addr "$WADDR"
wait "$SERVE_PID"
SERVE_PID=
grep -q "world totals:" "$SMOKE_DIR/wserve.log" \
    || { echo "world server drain printed no world totals"; cat "$SMOKE_DIR/wserve.log"; exit 1; }
grep -qE "world totals: [0-9]+ region opens, [1-9][0-9]* evictions" "$SMOKE_DIR/wserve.log" \
    || { echo "world server with --max-open 1 never evicted a region"; cat "$SMOKE_DIR/wserve.log"; exit 1; }

echo "ci: all green"

#!/usr/bin/env bash
# The full local gate: formatting, lints, release build, tests.
# Run from anywhere; operates on the repository this script lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test --workspace -q

echo "ci: all green"

//! Backward compatibility across the record-codec upgrade: a database
//! built with the v2 flat codec must open under the current binary and
//! answer VI/VD queries byte-identically to a v3-compact database of the
//! same terrain — and the degraded open path must still work on it.

use std::sync::Arc;

use dm_core::record::RecordCodec;
use dm_core::{BoundaryPolicy, DirectMeshDb, DmBuildOptions, IntegrityReport, VdQuery};
use dm_geom::{Rect, Vec2};
use dm_mtm::builder::{build_pm, PmBuild, PmBuildConfig};
use dm_mtm::PlaneTarget;
use dm_storage::{BufferPool, FileStore};
use dm_terrain::{generate, TriMesh};

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("dm_codec_{}_{name}.db", std::process::id()))
}

fn sample_pm() -> PmBuild {
    let hf = generate::fractal_terrain(21, 21, 5);
    build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default())
}

/// Create a file-backed database with the given codec and drop it, then
/// reopen it from the file alone.
fn persist_and_reopen(name: &str, pm: &PmBuild, codec: RecordCodec) -> DirectMeshDb {
    let path = tmp(name);
    let _ = std::fs::remove_file(&path);
    {
        let pool = Arc::new(BufferPool::new(
            Box::new(FileStore::create(&path).unwrap()),
            2048,
        ));
        let db = DirectMeshDb::create_in(
            pool,
            pm,
            &DmBuildOptions {
                codec,
                ..Default::default()
            },
        );
        assert_eq!(db.codec(), codec);
    }
    let pool = Arc::new(BufferPool::new(
        Box::new(FileStore::open(&path).unwrap()),
        2048,
    ));
    DirectMeshDb::open(pool).unwrap()
}

fn vd_query(db: &DirectMeshDb, roi: Rect) -> VdQuery {
    let e_min = db.e_for_points_fraction(0.4);
    let e_far = db.e_for_points_fraction(0.05).max(e_min);
    VdQuery {
        roi,
        target: PlaneTarget {
            origin: roi.min,
            dir: Vec2::new(0.0, 1.0),
            e_min,
            slope: (e_far - e_min) / roi.height().max(1e-9),
            e_max: e_far,
        },
    }
}

#[test]
fn v2_database_opens_and_answers_queries_identically() {
    let pm = sample_pm();
    let v2 = persist_and_reopen("v2", &pm, RecordCodec::Flat);
    let v3 = persist_and_reopen("v3", &pm, RecordCodec::Compact);
    assert_eq!(v2.codec(), RecordCodec::Flat, "codec survives reopen");
    assert_eq!(v3.codec(), RecordCodec::Compact);
    assert_eq!(v2.n_records, v3.n_records);

    // Every stored record decodes identically from both files.
    let a = v2.all_records();
    let b = v3.all_records();
    assert_eq!(a.len(), b.len());
    for (id, rec) in &a {
        assert_eq!(&b[id], rec, "record {id} differs across codecs");
    }

    // VI: same vertices and triangles at several LODs and ROIs.
    for (frac, roi_frac) in [(0.3, 1.0), (0.1, 0.5), (0.02, 0.3)] {
        let e = v2.e_for_points_fraction(frac);
        let roi = Rect::centered_square(v2.bounds.center(), v2.bounds.width() * roi_frac);
        let ra = v2.vi_query(&roi, e);
        let rb = v3.vi_query(&roi, e);
        let mut ia: Vec<u32> = ra.front.vertex_ids().collect();
        let mut ib: Vec<u32> = rb.front.vertex_ids().collect();
        ia.sort_unstable();
        ib.sort_unstable();
        assert_eq!(ia, ib, "VI vertex sets differ at keep={frac}");
        assert_eq!(
            ra.front.num_triangles(),
            rb.front.num_triangles(),
            "VI triangle counts differ at keep={frac}"
        );
    }

    // VD: multi-base decomposition over a sub-window.
    let roi = Rect::centered_square(v2.bounds.center(), v2.bounds.width() * 0.6);
    let qa = vd_query(&v2, roi);
    let qb = vd_query(&v3, roi);
    let ra = v2.vd_multi_base(&qa, BoundaryPolicy::FetchOnMiss, 8);
    let rb = v3.vd_multi_base(&qb, BoundaryPolicy::FetchOnMiss, 8);
    let mut ia: Vec<u32> = ra.front.vertex_ids().collect();
    let mut ib: Vec<u32> = rb.front.vertex_ids().collect();
    ia.sort_unstable();
    ib.sort_unstable();
    assert_eq!(ia, ib, "VD vertex sets differ");
    assert_eq!(ra.front.num_triangles(), rb.front.num_triangles());
    assert_eq!(ra.cubes.len(), rb.cubes.len(), "cube decomposition differs");

    for name in ["v2", "v3"] {
        let _ = std::fs::remove_file(tmp(name));
    }
}

#[test]
fn v2_database_still_opens_degraded() {
    let pm = sample_pm();
    let path = tmp("v2_degraded");
    let _ = std::fs::remove_file(&path);
    {
        let pool = Arc::new(BufferPool::new(
            Box::new(FileStore::create(&path).unwrap()),
            2048,
        ));
        DirectMeshDb::create_in(
            pool,
            &pm,
            &DmBuildOptions {
                codec: RecordCodec::Flat,
                ..Default::default()
            },
        );
    }
    let pool = Arc::new(BufferPool::new(
        Box::new(FileStore::open(&path).unwrap()),
        2048,
    ));
    let mut report = IntegrityReport::default();
    let db = DirectMeshDb::open_degraded(pool, &mut report).unwrap();
    assert!(report.is_clean(), "healthy v2 file reports clean: {report}");
    assert_eq!(db.codec(), RecordCodec::Flat);
    let e = db.e_for_points_fraction(0.2);
    let res = db.vi_query(&db.bounds.clone(), e);
    assert!(res.front.num_triangles() > 0);
    let _ = std::fs::remove_file(&path);
}

//! Concurrency stress tests for the sharded buffer pool and the shared
//! read-only database:
//!
//! * many threads hammering overlapping queries — no panics, no spurious
//!   failures (a checksum false positive under concurrency would surface
//!   as a strict-query error),
//! * per-shard access counters partition the global ones, and the
//!   concurrent logical disk-access count equals the sequential count of
//!   the same workload (parallelism must not change the paper's metric),
//! * retry accounting stays exact when several workers retry the same
//!   pages: per-operation reports sum to the global retry counter, and
//!   retries never leak into the logical-read figures.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dm_core::{DirectMeshDb, DmBuildOptions};
use dm_geom::{Rect, Vec2};
use dm_mtm::builder::{build_pm, PmBuildConfig};
use dm_storage::{BufferPool, FaultConfig, FaultInjector, MemStore, StatsSnapshot};
use dm_terrain::{generate, TriMesh};

const THREADS: usize = 8;

fn build_db(pool: Arc<BufferPool>) -> DirectMeshDb {
    let hf = generate::fractal_terrain(17, 17, 5);
    let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());
    DirectMeshDb::build(pool, &pm, &DmBuildOptions::default())
}

/// A fixed set of overlapping (ROI, LOD) probes covering coarse and fine
/// levels, interior and border regions.
fn workload(db: &DirectMeshDb) -> Vec<(Rect, f64)> {
    let b = db.bounds;
    let mut qs = Vec::new();
    for i in 0..16 {
        let f = 0.02 + 0.05 * i as f64;
        let side = b.width() * (0.25 + 0.05 * (i % 8) as f64);
        let c = Vec2::new(
            b.min.x + b.width() * (0.2 + 0.04 * i as f64),
            b.min.y + b.height() * (0.8 - 0.04 * i as f64),
        );
        qs.push((Rect::centered_square(c, side), db.e_max * f.min(0.85)));
    }
    qs
}

fn sum_shards(per_shard: &[StatsSnapshot]) -> StatsSnapshot {
    per_shard
        .iter()
        .fold(StatsSnapshot::default(), |a, s| StatsSnapshot {
            reads: a.reads + s.reads,
            writes: a.writes + s.writes,
            retries: a.retries + s.retries,
        })
}

#[test]
fn stress_shared_db_no_panics_no_false_positives_stable_counts() {
    let pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), 8192));
    let db = build_db(pool);
    let qs = workload(&db);

    // Sequential reference: signatures and the cold logical-read count.
    db.cold_start();
    let reference: Vec<(usize, usize)> = qs
        .iter()
        .map(|(roi, e)| {
            let (res, rep) = db.try_vi_query(roi, *e).expect("clean store");
            assert!(rep.is_clean());
            (res.points, res.front.num_triangles())
        })
        .collect();
    let sequential_reads = db.disk_accesses();
    assert!(sequential_reads > 0);

    // Concurrent run of the same workload from cold: 8 threads, hundreds
    // of iterations each, all queries strict — any torn read, checksum
    // false positive, or lock-ordering deadlock fails the test.
    db.cold_start();
    let iters = 150usize;
    let executed = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let db = &db;
            let qs = &qs;
            let reference = &reference;
            let executed = &executed;
            s.spawn(move || {
                for i in 0..iters {
                    // Rotate the starting offset per thread so different
                    // threads collide on different queries.
                    for k in 0..qs.len() {
                        let idx = (k + t * 3 + i) % qs.len();
                        let (roi, e) = &qs[idx];
                        let (res, rep) = db
                            .try_vi_query(roi, *e)
                            .expect("strict query must never fail on a clean store");
                        assert!(rep.is_clean());
                        assert_eq!(
                            (res.points, res.front.num_triangles()),
                            reference[idx],
                            "thread {t} iteration {i} query {idx} diverged"
                        );
                        executed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(
        executed.load(Ordering::Relaxed),
        (THREADS * iters * qs.len()) as u64
    );

    // The pool holds the whole database, so every page is fetched at most
    // once per cold period regardless of interleaving: the concurrent
    // logical disk-access count must equal the sequential one.
    let global = db.pool().stats();
    assert_eq!(
        global.reads, sequential_reads,
        "concurrency changed the logical disk-access count"
    );
    assert_eq!(global.retries, 0, "no faults were injected");
    let shard_sum = sum_shards(&db.pool().shard_stats());
    assert_eq!(
        shard_sum, global,
        "per-shard counters must partition the global ones"
    );
    assert!(
        db.pool().num_shards() > 1,
        "stress must actually exercise multiple shards"
    );
}

#[test]
fn concurrent_retry_accounting_is_exact() {
    // A store that fails 5% of reads transiently (plus rare bit flips):
    // workers retrying the *same* pages concurrently must each report
    // exactly their own retry spend — the per-operation reports sum to
    // the pool's global retry counter, with nothing double-counted and
    // nothing leaked into the logical-read figures.
    let injector = FaultInjector::new(
        Box::new(MemStore::new()),
        FaultConfig::new(3)
            .with_read_fail_rate(0.05)
            .with_bit_flip_rate(0.005),
    );
    let pool = Arc::new(BufferPool::new(Box::new(injector), 8192).with_max_retries(16));
    let db = build_db(pool);
    let qs = workload(&db);

    db.cold_start();
    let reported_retries = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let db = &db;
            let qs = &qs;
            let reported_retries = &reported_retries;
            s.spawn(move || {
                for i in 0..40 {
                    for k in 0..qs.len() {
                        let (roi, e) = &qs[(k + t + i) % qs.len()];
                        let (_res, rep) = db
                            .try_vi_query(roi, *e)
                            .expect("faults must heal within the retry budget");
                        assert!(rep.is_clean(), "healed faults must not report loss");
                        reported_retries.fetch_add(rep.retries, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let global = db.pool().stats();
    assert!(global.retries > 0, "the fault rate must have fired");
    assert_eq!(
        reported_retries.load(Ordering::Relaxed),
        global.retries,
        "per-operation retry reports must partition the global counter \
         (a delta of the shared counter would double-count across threads)"
    );
    assert_eq!(
        sum_shards(&db.pool().shard_stats()),
        global,
        "shard counters must partition the global ones under faults too"
    );

    // Retries are not logical disk accesses: the same workload on a
    // fault-free store reads exactly as many pages.
    let clean_pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), 8192));
    let clean_db = build_db(clean_pool);
    clean_db.cold_start();
    for (roi, e) in &workload(&clean_db) {
        let _ = clean_db.try_vi_query(roi, *e).expect("clean store");
    }
    db.cold_start();
    for (roi, e) in &qs {
        let _ = db.try_vi_query(roi, *e).expect("faults heal");
    }
    assert_eq!(
        db.disk_accesses(),
        clean_db.disk_accesses(),
        "retries leaked into the logical disk-access count"
    );
}

#[test]
fn two_workers_retrying_the_same_page_do_not_cross_account() {
    // Regression for the stats-accounting seam: a tiny single-page-ish
    // working set forces both workers onto the same faulty pages at the
    // same time. Each worker's per-op deltas must still sum (with the
    // other's) to the global counter — the thread-local attribution in
    // `dm_storage::stats` is what makes this exact.
    let injector = FaultInjector::new(
        Box::new(MemStore::new()),
        FaultConfig::new(11).with_read_fail_rate(0.30),
    );
    let pool = Arc::new(BufferPool::new(Box::new(injector), 4096).with_max_retries(32));
    let db = build_db(pool);
    let plane = (db.bounds, db.e_max * 0.3);

    db.cold_start();
    let per_worker: Vec<AtomicU64> = (0..2).map(|_| AtomicU64::new(0)).collect();
    std::thread::scope(|s| {
        for slot in &per_worker {
            let db = &db;
            let (roi, e) = &plane;
            s.spawn(move || {
                for _ in 0..60 {
                    // Both workers flush-and-refetch the same pages, so
                    // their retries overlap in time on the same shards.
                    let _ = db.pool().try_flush_all();
                    let (_res, rep) = db.try_vi_query(roi, *e).expect("faults heal");
                    slot.fetch_add(rep.retries, Ordering::Relaxed);
                }
            });
        }
    });
    let a = per_worker[0].load(Ordering::Relaxed);
    let b = per_worker[1].load(Ordering::Relaxed);
    let global = db.pool().stats().retries;
    assert!(global > 0, "the 30% fault rate must have fired");
    assert_eq!(
        a + b,
        global,
        "workers double- or under-counted shared-page retries ({a} + {b} != {global})"
    );
}

//! Crash-injection property test for the live write path.
//!
//! For random interleavings of edits, injected crashes (the fault layer
//! kills the store after N writes, so the process "dies" at an arbitrary
//! byte offset inside the commit protocol), reopens and queries, the
//! file-backed [`LiveDb`] must always recover to a state that is
//! **bit-for-bit** equal to a serial reference execution — an in-memory
//! [`DirectMeshDb`] that applies exactly the edits whose commit points
//! were reached, in order, with no WAL and no crashes.
//!
//! The same schedules are also replayed under the existing 1% transient
//! read-fault injection (the buffer pool's retries must absorb it), and
//! every final state is cross-checked through a degraded open.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dm_core::{DirectMeshDb, DmBuildOptions, EditOp, IntegrityReport, LiveDb, LiveOptions};
use dm_geom::{Box3, Rect, Vec2, Vec3};
use dm_mtm::builder::{build_pm, PmBuildConfig};
use dm_storage::wal::root_path;
use dm_storage::{BufferPool, FaultConfig, FileStore, MemStore, RootFile};
use dm_terrain::{generate, TriMesh};
use proptest::prelude::*;

/// Unique store path per proptest case (cases run in one process).
static CASE: AtomicU64 = AtomicU64::new(0);

fn tmp_path() -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("dm_crashprop_{}_{n}.db", std::process::id()))
}

fn cleanup(path: &Path) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(dm_storage::wal::wal_path(path));
    let _ = std::fs::remove_file(root_path(path));
}

/// Build the same terrain into a file-backed store (the system under
/// test) and an in-memory store (the serial reference); returns the
/// reference database.
fn build_stores(path: &Path, side: usize, seed: u64) -> DirectMeshDb {
    cleanup(path);
    let hf = generate::fractal_terrain(side, side, seed);
    let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());
    let pool = Arc::new(BufferPool::new(
        Box::new(FileStore::create(path).unwrap()),
        2048,
    ));
    DirectMeshDb::create_in(pool, &pm, &DmBuildOptions::default());
    let shadow_pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), 2048));
    DirectMeshDb::create_in(shadow_pool, &pm, &DmBuildOptions::default())
}

/// An edit region from fractional coordinates over the terrain bounds.
fn region_from(db: &DirectMeshDb, fx: f64, fy: f64, half: f64) -> Rect {
    let b = db.bounds;
    let c = Vec2::new(b.min.x + fx * b.width(), b.min.y + fy * b.height());
    let r = half * b.width().max(b.height());
    Rect::from_corners(Vec2::new(c.x - r, c.y - r), Vec2::new(c.x + r, c.y + r))
}

/// Canonical view of a spatial query answer: sorted `(id, z bits)`.
fn query_fingerprint(db: &DirectMeshDb) -> Vec<(u32, u64)> {
    let everywhere = Box3::new(
        Vec3::new(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY),
        Vec3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY),
    );
    let mut out: Vec<(u32, u64)> = db
        .fetch_box(&everywhere)
        .into_iter()
        .map(|r| (r.node.id, r.node.pos.z.to_bits()))
        .collect();
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole acceptance property: any schedule of
    /// edit / crash / reopen / query against the WAL-backed store is
    /// equivalent to a serial reference execution — including under 1%
    /// transient read faults, and when the final state is read back
    /// through a degraded open.
    #[test]
    fn edit_crash_reopen_schedules_match_serial_reference(
        seed in 0u64..10_000,
        read_faults in any::<bool>(),
        // (mode, fx, fy, half-extent, dz, kill-after-N-writes; 0 tears the WAL append itself)
        // mode 0: committed edit; 1: edit with a crash injected; 2: reopen.
        ops in collection::vec(
            (0u8..3, 0.15..0.85f64, 0.15..0.85f64, 0.05..0.3f64, -6.0..6.0f64, 0u64..12),
            2..6,
        ),
    ) {
        let path = tmp_path();
        let mut shadow = build_stores(&path, 9, seed);

        // Baseline fault config for "healthy" opens: either clean I/O or
        // transient read faults that retries must fully absorb.
        let base_fault = if read_faults {
            Some(FaultConfig::new(seed ^ 0xF417).with_read_fail_rate(0.01))
        } else {
            None
        };
        let opts = LiveOptions { cache_pages: 2048, fault: base_fault };

        let (mut live, info) = LiveDb::open(&path, &opts).unwrap();
        prop_assert_eq!(info.epoch, 0);
        let mut epoch = 0u64;

        for (i, &(mode, fx, fy, half, dz, kill_n)) in ops.iter().enumerate() {
            match mode {
                0 => {
                    // A committed edit: must succeed and advance the epoch.
                    let region = region_from(&live.snapshot(), fx, fy, half);
                    let op = EditOp::Raise(dz);
                    let stats = live.apply_patch(&region, &op).unwrap();
                    epoch += 1;
                    prop_assert_eq!(stats.epoch, epoch);
                    shadow = shadow.apply_patch(&region, &op).unwrap().db;
                }
                1 => {
                    // The same edit, but the store dies after `kill_n`
                    // writes — possibly mid-WAL, mid-page, or mid-root.
                    let region = region_from(&live.snapshot(), fx, fy, half);
                    let op = EditOp::Raise(dz);
                    drop(live);
                    let mut crash = FaultConfig::new(
                        seed.wrapping_mul(31).wrapping_add(i as u64),
                    )
                    .with_fail_writes_after(kill_n);
                    if read_faults {
                        crash = crash.with_read_fail_rate(0.01);
                    }
                    let crash_opts = LiveOptions { cache_pages: 2048, fault: Some(crash) };
                    let (crashy, info) = LiveDb::open(&path, &crash_opts).unwrap();
                    prop_assert_eq!(info.epoch, epoch);
                    let res = crashy.apply_patch(&region, &op);
                    drop(crashy);

                    // Recovery decides: the edit either fully committed
                    // (WAL entry was durable, or the commit point itself
                    // was reached) or fully vanished. The recovered epoch
                    // is the oracle for which world we are in.
                    let (recovered, info) = LiveDb::open(&path, &opts).unwrap();
                    if info.epoch == epoch + 1 {
                        epoch += 1;
                        shadow = shadow.apply_patch(&region, &op).unwrap().db;
                    } else {
                        prop_assert_eq!(info.epoch, epoch);
                        prop_assert!(
                            res.is_err(),
                            "edit reported success but did not survive recovery"
                        );
                    }
                    live = recovered;
                }
                _ => {
                    // A clean close + reopen: nothing to replay, nothing
                    // lost.
                    drop(live);
                    let (reopened, info) = LiveDb::open(&path, &opts).unwrap();
                    prop_assert_eq!(info.epoch, epoch);
                    prop_assert_eq!(info.replayed, 0);
                    prop_assert!(!info.discarded_tail);
                    live = reopened;
                }
            }

            // After every step the live store must match the serial
            // reference bit-for-bit — full record state and the spatial
            // query path.
            let snap = live.snapshot();
            prop_assert_eq!(snap.all_records(), shadow.all_records());
            prop_assert_eq!(query_fingerprint(&snap), query_fingerprint(&shadow));
        }

        // Final cross-check: a degraded open of the committed state sees
        // the same world (and finds nothing actually degraded).
        drop(live);
        let (_root, committed) = RootFile::open(&root_path(&path)).unwrap();
        let catalog = committed.map(|r| r.catalog_page).unwrap_or(0);
        let pool = Arc::new(BufferPool::new(
            Box::new(FileStore::open(&path).unwrap()),
            2048,
        ));
        let mut report = IntegrityReport::default();
        let db = DirectMeshDb::open_degraded_at(pool, catalog, &mut report).unwrap();
        prop_assert!(report.is_clean(), "degraded open found damage: {:?}", report);
        prop_assert_eq!(db.all_records(), shadow.all_records());
        cleanup(&path);
    }
}

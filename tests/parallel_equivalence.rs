//! Property-based equivalence: the parallel batch engine must return
//! results bit-identical to sequential execution — same point sets, same
//! face sets, same fetched-record counts — for arbitrary query batches,
//! on a clean database and on one whose store injects transient faults
//! (which the buffer pool's retry budget heals, so degraded semantics
//! never actually lose data).

use std::sync::{Arc, OnceLock};

use dm_core::parallel::{vd_multi_base_parallel, vd_query_batch, vi_query_batch};
use dm_core::{BoundaryPolicy, DirectMeshDb, DmBuildOptions, VdQuery};
use dm_geom::{Rect, Vec2};
use dm_mtm::builder::{build_pm, PmBuildConfig};
use dm_mtm::PlaneTarget;
use dm_storage::{BufferPool, FaultConfig, FaultInjector, MemStore};
use dm_terrain::{generate, TriMesh};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_db(faulty: bool) -> DirectMeshDb {
    let hf = generate::fractal_terrain(21, 21, 77);
    let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());
    let store: Box<dyn dm_storage::store::PageStore> = if faulty {
        // 1% transient read failures plus occasional bit flips; with a
        // 16-retry budget every fault heals, so parallel and sequential
        // runs see identical data despite different fault interleavings.
        Box::new(FaultInjector::new(
            Box::new(MemStore::new()),
            FaultConfig::new(9)
                .with_read_fail_rate(0.01)
                .with_bit_flip_rate(0.002),
        ))
    } else {
        Box::new(MemStore::new())
    };
    let pool = Arc::new(BufferPool::new(store, 4096).with_max_retries(16));
    DirectMeshDb::build(pool, &pm, &DmBuildOptions::default())
}

fn clean_db() -> &'static DirectMeshDb {
    static DB: OnceLock<DirectMeshDb> = OnceLock::new();
    DB.get_or_init(|| build_db(false))
}

fn faulty_db() -> &'static DirectMeshDb {
    static DB: OnceLock<DirectMeshDb> = OnceLock::new();
    DB.get_or_init(|| build_db(true))
}

/// Canonical form of a front mesh: sorted vertex ids and the face set
/// with normalized vertex order.
fn mesh_signature(front: &dm_mtm::FrontMesh) -> (Vec<u32>, Vec<[u32; 3]>) {
    let mut ids: Vec<u32> = front.vertex_ids().collect();
    ids.sort_unstable();
    let mut tris: Vec<[u32; 3]> = front
        .triangles()
        .map(|mut t| {
            t.sort_unstable();
            t
        })
        .collect();
    tris.sort_unstable();
    (ids, tris)
}

fn random_vi_batch(db: &DirectMeshDb, seed: u64, n: usize) -> Vec<(Rect, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let b = db.bounds;
    (0..n)
        .map(|_| {
            let e = db.e_max * rng.random_range(0.0..0.7f64).powi(2);
            let side = rng.random_range(b.width() * 0.2..b.width());
            let cx = rng.random_range(b.min.x..b.max.x);
            let cy = rng.random_range(b.min.y..b.max.y);
            let roi = Rect::from_corners(
                Vec2::new(cx - side / 2.0, cy - side / 2.0),
                Vec2::new(cx + side / 2.0, cy + side / 2.0),
            );
            (roi, e)
        })
        .collect()
}

fn random_vd_batch(db: &DirectMeshDb, seed: u64, n: usize) -> Vec<VdQuery> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
    let b = db.bounds;
    (0..n)
        .map(|_| {
            let side = rng.random_range(b.width() * 0.3..b.width());
            let x0 = rng.random_range(b.min.x..(b.max.x - side).max(b.min.x + 1e-9));
            let y0 = rng.random_range(b.min.y..(b.max.y - side).max(b.min.y + 1e-9));
            let roi = Rect::from_corners(Vec2::new(x0, y0), Vec2::new(x0 + side, y0 + side));
            let e_min = db.e_max * rng.random_range(0.005..0.05);
            let run = roi.height().max(1e-9);
            let slope = (db.e_max / run) * rng.random_range(0.1..0.9);
            VdQuery {
                roi,
                target: PlaneTarget {
                    origin: roi.min,
                    dir: Vec2::new(0.0, 1.0),
                    e_min,
                    slope,
                    e_max: (e_min + slope * run).min(db.e_max),
                },
            }
        })
        .collect()
}

fn check_vi_equivalence(db: &DirectMeshDb, seed: u64, n: usize, threads: usize) {
    let batch = random_vi_batch(db, seed, n);
    let seq: Vec<_> = batch.iter().map(|(r, e)| db.try_vi_query(r, *e)).collect();
    let par = vi_query_batch(db, &batch, threads);
    assert_eq!(seq.len(), par.len());
    for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
        let (sr, s_rep) = s.as_ref().expect("faults must heal within budget");
        let (pr, p_rep) = p.as_ref().expect("faults must heal within budget");
        assert!(s_rep.is_clean() && p_rep.is_clean(), "query {i} lost data");
        assert_eq!(sr.fetched_records, pr.fetched_records, "query {i} fetch");
        assert_eq!(sr.points, pr.points, "query {i} points");
        assert_eq!(
            mesh_signature(&sr.front),
            mesh_signature(&pr.front),
            "query {i} mesh"
        );
    }
}

fn check_vd_equivalence(db: &DirectMeshDb, seed: u64, n: usize, threads: usize) {
    let batch = random_vd_batch(db, seed, n);
    let seq: Vec<_> = batch
        .iter()
        .map(|q| db.try_vd_single_base(q, BoundaryPolicy::Skip))
        .collect();
    let par = vd_query_batch(db, &batch, BoundaryPolicy::Skip, threads);
    for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
        let (sr, s_rep) = s.as_ref().expect("faults must heal within budget");
        let (pr, p_rep) = p.as_ref().expect("faults must heal within budget");
        assert!(s_rep.is_clean() && p_rep.is_clean(), "query {i} lost data");
        assert_eq!(sr.fetched_records, pr.fetched_records, "query {i} fetch");
        assert_eq!(
            mesh_signature(&sr.front),
            mesh_signature(&pr.front),
            "query {i} mesh"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallel_vi_batch_equals_sequential(
        seed in 0u64..10_000,
        n in 1usize..12,
        threads in 2usize..6,
    ) {
        check_vi_equivalence(clean_db(), seed, n, threads);
    }

    #[test]
    fn parallel_vd_batch_equals_sequential(
        seed in 0u64..10_000,
        n in 1usize..8,
        threads in 2usize..6,
    ) {
        check_vd_equivalence(clean_db(), seed, n, threads);
    }

    #[test]
    fn parallel_multi_base_equals_sequential(
        seed in 0u64..10_000,
        angle in 0.1..0.9f64,
    ) {
        let db = clean_db();
        let mut batch = random_vd_batch(db, seed, 1);
        batch[0].target.slope *= angle.max(0.05);
        let q = batch[0];
        let (seq, seq_rep) = db
            .try_vd_multi_base(&q, BoundaryPolicy::Skip, 8)
            .expect("clean db");
        let (par, par_rep) =
            vd_multi_base_parallel(db, &q, BoundaryPolicy::Skip, 8, 4).expect("clean db");
        prop_assert!(seq_rep.is_clean() && par_rep.is_clean());
        prop_assert_eq!(seq.cubes, par.cubes);
        prop_assert_eq!(seq.fetched_records, par.fetched_records);
        prop_assert_eq!(mesh_signature(&seq.front), mesh_signature(&par.front));
    }

    #[test]
    fn parallel_batches_survive_fault_injection_identically(
        seed in 0u64..10_000,
        n in 1usize..8,
        threads in 2usize..6,
    ) {
        // 1% transient read faults + bit flips, 16-retry budget: faults
        // heal, so the parallel results must still be identical to the
        // sequential ones even though the fault stream interleaves
        // differently across workers.
        check_vi_equivalence(faulty_db(), seed, n, threads);
        check_vd_equivalence(faulty_db(), seed, n.min(4), threads);
    }

    #[test]
    fn multi_base_under_faults_equals_sequential(
        seed in 0u64..10_000,
    ) {
        let db = faulty_db();
        let q = random_vd_batch(db, seed, 1)[0];
        let (seq, _) = db
            .try_vd_multi_base(&q, BoundaryPolicy::Skip, 8)
            .expect("faults must heal within budget");
        let (par, _) = vd_multi_base_parallel(db, &q, BoundaryPolicy::Skip, 8, 4)
            .expect("faults must heal within budget");
        prop_assert_eq!(seq.cubes, par.cubes);
        prop_assert_eq!(seq.fetched_records, par.fetched_records);
        prop_assert_eq!(mesh_signature(&seq.front), mesh_signature(&par.front));
    }
}

//! End-to-end pipeline tests: heightfield → hierarchy → database →
//! queries → meshes, across all three systems.

use std::sync::Arc;

use dm_baselines::{HdovDb, PmDb};
use dm_core::{BoundaryPolicy, DirectMeshDb, DmBuildOptions, VdQuery};
use dm_geom::{Rect, Vec2};
use dm_mtm::builder::{build_pm, PmBuild, PmBuildConfig};
use dm_mtm::PlaneTarget;
use dm_storage::{BufferPool, MemStore};
use dm_terrain::{generate, metrics, obj, Heightfield, TriMesh};

struct World {
    hf: Heightfield,
    original: TriMesh,
    pm_build: PmBuild,
    dm: DirectMeshDb,
    pm: PmDb,
    hdov: HdovDb,
}

fn world(side: usize, seed: u64) -> World {
    let hf = generate::fractal_terrain(side, side, seed);
    let mesh = TriMesh::from_heightfield(&hf);
    let original = mesh.clone();
    let pm_build = build_pm(mesh, &PmBuildConfig::default());
    let mk = || Arc::new(BufferPool::new(Box::new(MemStore::new()), 4096));
    let dm = DirectMeshDb::build(mk(), &pm_build, &DmBuildOptions::default());
    let pm = PmDb::build(mk(), &pm_build);
    let hdov = HdovDb::build(mk(), &pm_build, &hf);
    World {
        hf,
        original,
        pm_build,
        dm,
        pm,
        hdov,
    }
}

#[test]
fn all_systems_agree_on_uniform_cuts() {
    let w = world(33, 1);
    let h = &w.pm_build.hierarchy;
    for frac in [0.02, 0.1, 0.5] {
        let e = h.e_max * frac;
        let replay = h.replay_mesh(&w.original, e);
        let dm = w.dm.vi_query(&w.dm.bounds, e);
        let pm = w.pm.vi_query(&w.pm.bounds, e);
        assert_eq!(dm.points, replay.num_live_vertices(), "DM at {frac}");
        assert_eq!(
            pm.front.num_vertices(),
            replay.num_live_vertices(),
            "PM at {frac}"
        );
        assert_eq!(
            dm.front.num_triangles(),
            pm.front.num_triangles(),
            "DM and PM triangulations at {frac}"
        );
        // And the *same* vertex sets.
        let mut a: Vec<u32> = dm.front.vertex_ids().collect();
        let mut b: Vec<u32> = pm.front.vertex_ids().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}

#[test]
fn dm_meshes_honour_the_error_bound() {
    let w = world(33, 2);
    let mut last_rmse = f64::INFINITY;
    for frac in [0.2, 0.02, 0.0] {
        let e = w.dm.e_max * frac;
        let res = w.dm.vi_query(&w.dm.bounds, e);
        let (mesh, _) = res.front.to_trimesh();
        mesh.validate().unwrap();
        let err = metrics::mesh_error(&mesh, &w.hf, 1);
        assert!(
            err.rmse <= last_rmse + 1e-9,
            "finer LOD must not be less accurate ({} > {last_rmse})",
            err.rmse
        );
        last_rmse = err.rmse;
    }
    assert!(last_rmse < 1e-9, "LOD 0 must reproduce the terrain exactly");
}

#[test]
fn vd_pipeline_produces_valid_gradient_meshes() {
    let w = world(33, 3);
    let roi = w.dm.bounds;
    let e_min = w.dm.e_max * 0.001;
    let q = VdQuery {
        roi,
        target: PlaneTarget {
            origin: roi.min,
            dir: Vec2::new(0.0, 1.0),
            e_min,
            slope: w.dm.e_max * 0.4 / roi.height(),
            e_max: w.dm.e_max * 0.4,
        },
    };
    let sb = w.dm.vd_single_base(&q, BoundaryPolicy::Skip);
    let mb = w.dm.vd_multi_base(&q, BoundaryPolicy::Skip, 8);
    let pm = w.pm.vd_query(&roi, &q.target);
    for (name, front) in [("SB", &sb.front), ("MB", &mb.front), ("PM", &pm.front)] {
        let (mesh, _) = front.to_trimesh();
        mesh.validate()
            .unwrap_or_else(|e| panic!("{name} mesh invalid: {e}"));
        // Denser near the viewer.
        let mid = roi.center().y;
        let near = front
            .vertex_ids()
            .filter(|&v| front.node(v).unwrap().pos.y < mid)
            .count();
        assert!(
            near * 2 > front.num_vertices(),
            "{name}: near half not denser ({near} of {})",
            front.num_vertices()
        );
    }
    // SB judges splits by node position, PM by footprint-minimum — PM
    // ends at least as fine. The fronts must stay *compatible*: every SB
    // vertex lies on a path that PM's front also crosses (as the same
    // node or a relative), i.e. both cover the same surface.
    let h = &w.pm_build.hierarchy;
    let pm_ids: Vec<u32> = pm.front.vertex_ids().collect();
    for v in sb.front.vertex_ids() {
        let ok = pm.front.contains(v) || pm_ids.iter().any(|&p| h.related(p, v));
        assert!(ok, "SB vertex {v} has no relative in the PM front");
    }
    assert!(
        pm.front.num_vertices() >= sb.front.num_vertices(),
        "footprint-driven PM cannot be coarser than position-driven SB"
    );
}

#[test]
fn hdov_covers_the_roi_with_tiles() {
    let w = world(33, 4);
    let res = w.hdov.vi_query(&w.hdov.bounds, 0.0);
    // The finest approximation is the cut at LOD 0 (zero-error collapses
    // make it slightly smaller than the raw point count).
    let full_cut = w.pm_build.hierarchy.uniform_cut(0.0).len();
    assert_eq!(
        res.points, full_cut,
        "full-res query returns the whole LOD-0 cut"
    );
    let sub = Rect::new(w.hdov.bounds.min, w.hdov.bounds.center());
    let part = w.hdov.vi_query(&sub, 0.0);
    assert!(part.points < res.points);
    assert!(
        part.points >= full_cut / 5,
        "quarter ROI needs roughly a quarter of points"
    );
}

#[test]
fn obj_export_of_query_results_is_well_formed() {
    let w = world(17, 5);
    let res = w.dm.vi_query(&w.dm.bounds, w.dm.e_max * 0.05);
    let (mesh, _) = res.front.to_trimesh();
    let text = obj::to_obj_string(&mesh);
    let vs = text.lines().filter(|l| l.starts_with("v ")).count();
    let fs = text.lines().filter(|l| l.starts_with("f ")).count();
    assert_eq!(vs, mesh.num_live_vertices());
    assert_eq!(fs, mesh.num_live_triangles());
}

#[test]
fn disk_access_accounting_is_deterministic() {
    let w = world(33, 6);
    let roi = Rect::centered_square(w.dm.bounds.center(), w.dm.bounds.width() * 0.4);
    let e = w.dm.e_max * 0.05;
    let runs: Vec<u64> = (0..3)
        .map(|_| {
            w.dm.cold_start();
            let _ = w.dm.vi_query(&roi, e);
            w.dm.disk_accesses()
        })
        .collect();
    assert!(
        runs.windows(2).all(|w| w[0] == w[1]),
        "cold-start runs must repeat: {runs:?}"
    );
}

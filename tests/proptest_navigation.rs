//! Property-based navigation tests: an incremental [`NavigationSession`]
//! must produce exactly the mesh a fresh multi-base query produces, frame
//! by frame, along arbitrary waypoint paths — including under transient
//! read faults and on a database opened in degraded mode over persistent
//! corruption.

use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;

use dm_core::navigation::waypoint_path;
use dm_core::{
    BoundaryPolicy, DirectMeshDb, DmBuildOptions, IntegrityReport, NavigationSession, PlanMode,
    VdQuery,
};
use dm_geom::{Rect, Vec2};
use dm_mtm::builder::{build_pm, PmBuildConfig};
use dm_mtm::refine::FrontMesh;
use dm_mtm::PlaneTarget;
use dm_storage::{BufferPool, FaultConfig, FaultInjector, FileStore, MemStore, PAGE_SIZE};
use dm_terrain::{generate, TriMesh};
use proptest::prelude::*;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("dm_nav_{}_{name}.db", std::process::id()))
}

fn build_db(side: usize, seed: u64) -> DirectMeshDb {
    let hf = generate::fractal_terrain(side, side, seed);
    let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());
    let pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), 2048));
    DirectMeshDb::build(pool, &pm, &DmBuildOptions::default())
}

/// Viewer at the leading (north) edge of the window looking back south:
/// fine near the viewer, coarse in the distance.
fn query_at(db: &DirectMeshDb, roi: Rect) -> VdQuery {
    let e_min = db.e_max * 0.002;
    let slope = db.e_max * 0.2 / roi.height().max(1e-9);
    VdQuery {
        roi,
        target: PlaneTarget {
            origin: Vec2::new(roi.min.x, roi.max.y),
            dir: Vec2::new(0.0, -1.0),
            e_min,
            slope,
            e_max: e_min + slope * roi.height(),
        },
    }
}

fn vertex_set(front: &FrontMesh) -> HashSet<u32> {
    front.vertex_ids().collect()
}

/// Triangles normalised to start at their smallest vertex id, so two
/// fronts compare equal regardless of internal slot order.
fn face_set(front: &FrontMesh) -> BTreeSet<[u32; 3]> {
    front
        .triangles()
        .map(|mut t| {
            let k = t.iter().enumerate().min_by_key(|(_, &v)| v).unwrap().0;
            t.rotate_left(k);
            t
        })
        .collect()
}

/// Map unit-square waypoint fractions into the terrain bounds (with a
/// margin so the sliding window stays mostly inside).
fn path_in_bounds(
    db: &DirectMeshDb,
    fracs: &[(f64, f64)],
    window_frac: f64,
    frames: usize,
) -> (Vec<Rect>, f64) {
    let b = db.bounds;
    let pts: Vec<Vec2> = fracs
        .iter()
        .map(|&(fx, fy)| Vec2::new(b.min.x + fx * b.width(), b.min.y + fy * b.height()))
        .collect();
    let window = b.width().min(b.height()) * window_frac;
    (waypoint_path(&pts, window, frames), window)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline equivalence: along a random waypoint path, every
    /// incremental frame has exactly the vertex set AND face set of a
    /// cold multi-base query — for either boundary policy and arbitrary
    /// cube budgets.
    #[test]
    fn incremental_session_matches_fresh_queries_on_random_paths(
        terrain_seed in 0u64..10_000,
        side in 13usize..20,
        fracs in collection::vec((0.2..0.8f64, 0.2..0.8f64), 2..5),
        window_frac in 0.25..0.5f64,
        frames in 4usize..8,
        fetch_on_miss in any::<bool>(),
        max_cubes in 4usize..24,
    ) {
        let db = build_db(side, terrain_seed);
        let policy = if fetch_on_miss {
            BoundaryPolicy::FetchOnMiss
        } else {
            BoundaryPolicy::Skip
        };
        let (path, _) = path_in_bounds(&db, &fracs, window_frac, frames);
        let mut session = NavigationSession::new(&db, policy).with_max_cubes(max_cubes);
        for roi in &path {
            let q = query_at(&db, *roi);
            let stats = session.move_to(&q);
            prop_assert!(stats.vertices > 0, "empty frame at roi {roi:?}");
            let fresh = db.vd_multi_base(&q, policy, max_cubes);
            prop_assert_eq!(
                vertex_set(session.front()),
                vertex_set(&fresh.front),
                "vertex sets diverge at roi {:?}",
                roi
            );
            prop_assert_eq!(
                face_set(session.front()),
                face_set(&fresh.front),
                "face sets diverge at roi {:?}",
                roi
            );
        }
    }

    /// The query planner is an optimizer, not a semantics change: along a
    /// random waypoint path, a `PlanMode::Auto` session produces frame by
    /// frame exactly the vertex and face sets of both fixed strategies,
    /// and each fixed session's stats advertise the strategy it was
    /// forced to.
    #[test]
    fn planner_auto_matches_both_fixed_strategies_on_random_paths(
        terrain_seed in 0u64..10_000,
        side in 13usize..20,
        fracs in collection::vec((0.2..0.8f64, 0.2..0.8f64), 2..5),
        window_frac in 0.25..0.5f64,
        frames in 4usize..8,
        fetch_on_miss in any::<bool>(),
        max_cubes in 4usize..24,
    ) {
        let db = build_db(side, terrain_seed);
        let policy = if fetch_on_miss {
            BoundaryPolicy::FetchOnMiss
        } else {
            BoundaryPolicy::Skip
        };
        let (path, _) = path_in_bounds(&db, &fracs, window_frac, frames);
        let mut auto_s = NavigationSession::new(&db, policy)
            .with_max_cubes(max_cubes)
            .with_plan_mode(PlanMode::Auto);
        let mut incr_s = NavigationSession::new(&db, policy)
            .with_max_cubes(max_cubes)
            .with_plan_mode(PlanMode::Incremental);
        let mut full_s = NavigationSession::new(&db, policy)
            .with_max_cubes(max_cubes)
            .with_plan_mode(PlanMode::Full);
        for roi in &path {
            let q = query_at(&db, *roi);
            let sa = auto_s.move_to(&q);
            let si = incr_s.move_to(&q);
            let sf = full_s.move_to(&q);
            prop_assert!(sa.vertices > 0);
            prop_assert!(!si.plan.chose_full, "forced incremental must report incremental");
            prop_assert!(sf.plan.chose_full, "forced full must report full-requery");
            prop_assert_eq!(sa.vertices, si.vertices);
            prop_assert_eq!(sa.vertices, sf.vertices);
            prop_assert_eq!(
                vertex_set(auto_s.front()),
                vertex_set(incr_s.front()),
                "auto vs incremental vertices diverge at roi {:?}",
                roi
            );
            prop_assert_eq!(
                face_set(auto_s.front()),
                face_set(incr_s.front()),
                "auto vs incremental faces diverge at roi {:?}",
                roi
            );
            prop_assert_eq!(
                vertex_set(auto_s.front()),
                vertex_set(full_s.front()),
                "auto vs full-requery vertices diverge at roi {:?}",
                roi
            );
            prop_assert_eq!(
                face_set(auto_s.front()),
                face_set(full_s.front()),
                "auto vs full-requery faces diverge at roi {:?}",
                roi
            );
        }
    }

    /// With ~1% transient read faults the pool's retries usually heal the
    /// frame, and a healed frame must still match a fresh query exactly.
    /// A frame that exhausts retries degrades: it reports losses instead
    /// of failing, the mesh stays valid, and equivalence is only waived
    /// from that point on (the session legitimately kept fewer records).
    #[test]
    fn transient_read_faults_heal_or_degrade_cleanly(
        terrain_seed in 0u64..10_000,
        fault_seed in 0u64..10_000,
        fracs in collection::vec((0.25..0.75f64, 0.25..0.75f64), 2..4),
        window_frac in 0.3..0.5f64,
    ) {
        let path_name = format!("fault_{terrain_seed}_{fault_seed}");
        let file = tmp(&path_name);
        {
            let hf = generate::fractal_terrain(17, 17, terrain_seed);
            let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());
            let pool = Arc::new(BufferPool::new(
                Box::new(FileStore::create(&file).unwrap()),
                1024,
            ));
            DirectMeshDb::create_in(pool, &pm, &DmBuildOptions::default());
        }
        let inj = FaultInjector::new(
            Box::new(FileStore::open(&file).unwrap()),
            FaultConfig::new(fault_seed).with_read_fail_rate(0.01),
        );
        let pool = Arc::new(BufferPool::new(Box::new(inj), 1024));
        let db = DirectMeshDb::open(pool).expect("catalog readable despite 1% faults");

        let (path, _) = path_in_bounds(&db, &fracs, window_frac, 6);
        let mut session = NavigationSession::new(&db, BoundaryPolicy::Skip);
        let mut tainted = false;
        // The planner session rides the same fault stream and must obey
        // the same contract: healed frames match a fresh query, faulted
        // frames taint it and waive equivalence from then on.
        let mut auto_session =
            NavigationSession::new(&db, BoundaryPolicy::Skip).with_plan_mode(PlanMode::Auto);
        let mut auto_tainted = false;
        for roi in &path {
            let q = query_at(&db, *roi);
            let auto_clean = match auto_session.try_move_to(&q) {
                Ok((stats, report)) => {
                    prop_assert!(stats.vertices > 0);
                    let (mesh, _) = auto_session.front().to_trimesh();
                    prop_assert!(mesh.validate().is_ok(), "{:?}", mesh.validate());
                    if !report.is_clean() {
                        auto_tainted = true;
                    }
                    !auto_tainted
                }
                Err(_) => {
                    auto_tainted = true;
                    false
                }
            };
            let (stats, report) = match session.try_move_to(&q) {
                Ok(ok) => ok,
                // An index-page read that exhausted its retries aborts the
                // frame; the session must stay usable (no partial state).
                Err(_) => {
                    tainted = true;
                    continue;
                }
            };
            prop_assert!(stats.vertices > 0);
            let (mesh, _) = session.front().to_trimesh();
            prop_assert!(mesh.validate().is_ok(), "{:?}", mesh.validate());
            if !report.is_clean() {
                tainted = true;
            }
            if tainted && !auto_clean {
                continue;
            }
            // Healed frame: exact equivalence against a fresh query, which
            // may itself hit (and heal or report) faults.
            let (fresh, fresh_report) =
                match db.try_vd_multi_base(&q, BoundaryPolicy::Skip, 16) {
                    Ok(ok) => ok,
                    Err(_) => continue,
                };
            if !fresh_report.is_clean() {
                continue;
            }
            if !tainted {
                prop_assert_eq!(vertex_set(session.front()), vertex_set(&fresh.front));
                prop_assert_eq!(face_set(session.front()), face_set(&fresh.front));
            }
            if auto_clean {
                prop_assert_eq!(vertex_set(auto_session.front()), vertex_set(&fresh.front));
                prop_assert_eq!(face_set(auto_session.front()), face_set(&fresh.front));
            }
        }
        std::fs::remove_file(&file).ok();
    }
}

/// Persistent corruption: scribble over part of the heap, attach with
/// `open_degraded`, and walk the terrain. Every frame must degrade
/// deterministically — same surviving records as a cold query on the same
/// wounded database — report its losses, and never yield an invalid mesh.
#[test]
fn degraded_database_supports_incremental_navigation() {
    let file = tmp("degraded_walk");
    let hf = generate::fractal_terrain(25, 25, 4242);
    let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());
    {
        let pool = Arc::new(BufferPool::new(
            Box::new(FileStore::create(&file).unwrap()),
            1024,
        ));
        DirectMeshDb::create_in(pool, &pm, &DmBuildOptions::default());
    }

    // Corrupt a third of the heap behind the pool's back.
    let pool = Arc::new(BufferPool::new(
        Box::new(FileStore::open(&file).unwrap()),
        1024,
    ));
    let heap_pages = dm_core::catalog::read_catalog(&pool, 0).unwrap().heap_pages;
    drop(pool);
    let n_corrupt = (heap_pages.len() / 3).max(1);
    {
        use std::io::{Seek, SeekFrom, Write};
        let mut f = std::fs::OpenOptions::new().write(true).open(&file).unwrap();
        for &page in heap_pages.iter().take(n_corrupt) {
            f.seek(SeekFrom::Start(page as u64 * PAGE_SIZE as u64 + 77))
                .unwrap();
            f.write_all(b"scribble").unwrap();
        }
        f.sync_all().unwrap();
    }

    let pool = Arc::new(BufferPool::new(
        Box::new(FileStore::open(&file).unwrap()),
        1024,
    ));
    let mut open_report = IntegrityReport::default();
    let db = DirectMeshDb::open_degraded(pool, &mut open_report).expect("catalog intact");
    assert!(
        !open_report.is_clean(),
        "corruption must be visible at open"
    );

    // Clean twin of the same terrain for the subset sanity check.
    let clean_pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), 2048));
    let clean_db = DirectMeshDb::build(clean_pool, &pm, &DmBuildOptions::default());

    let fracs = [(0.3, 0.3), (0.7, 0.4), (0.5, 0.7)];
    let (path, _) = path_in_bounds(&db, &fracs, 0.45, 8);
    let mut session = NavigationSession::new(&db, BoundaryPolicy::Skip);
    let mut auto_s =
        NavigationSession::new(&db, BoundaryPolicy::Skip).with_plan_mode(PlanMode::Auto);
    let mut full_s =
        NavigationSession::new(&db, BoundaryPolicy::Skip).with_plan_mode(PlanMode::Full);
    let mut merged = IntegrityReport::default();
    for roi in &path {
        let q = query_at(&db, *roi);
        let (stats, report) = session
            .try_move_to(&q)
            .expect("index pages untouched; heap losses must degrade, not abort");
        let (auto_stats, auto_report) = auto_s
            .try_move_to(&q)
            .expect("planner session degrades the same way");
        let (_, full_report) = full_s
            .try_move_to(&q)
            .expect("full-requery session degrades the same way");
        // The corruption is persistent, so every strategy loses exactly
        // the records on the scribbled pages it touches — the planner
        // session's integrity report is byte-for-byte the report of the
        // fixed strategy it chose for this frame.
        let chosen = if auto_stats.plan.chose_full {
            &full_report
        } else {
            &report
        };
        assert_eq!(
            &auto_report, chosen,
            "auto frame report must equal its chosen strategy's report"
        );
        assert_eq!(vertex_set(auto_s.front()), vertex_set(session.front()));
        assert_eq!(face_set(auto_s.front()), face_set(session.front()));
        assert_eq!(vertex_set(full_s.front()), vertex_set(session.front()));
        assert_eq!(face_set(full_s.front()), face_set(session.front()));
        merged.merge(report);
        assert!(
            stats.vertices > 0,
            "a third of the heap is not the whole mesh"
        );
        let (mesh, _) = session.front().to_trimesh();
        assert!(mesh.validate().is_ok(), "{:?}", mesh.validate());

        // The corruption is persistent and deterministic, so the session's
        // surviving working set equals a cold query's — frames still match.
        let (fresh, _) = db
            .try_vd_multi_base(&q, BoundaryPolicy::Skip, 16)
            .expect("cold query degrades the same way");
        assert_eq!(vertex_set(session.front()), vertex_set(&fresh.front));
        assert_eq!(face_set(session.front()), face_set(&fresh.front));

        // The wounded mesh never invents geometry: every vertex it shows
        // also exists in the clean twin's full record set. (It may show
        // *more* vertices than the clean frame — losing a parent record
        // promotes its children to unrefinable seeds — so no size or
        // subset relation holds against the clean *frame*.)
        let clean = clean_db.vd_multi_base(&q, BoundaryPolicy::Skip, 16);
        assert!(clean.front.num_vertices() > 0);
        for v in session.front().vertex_ids() {
            assert!(
                (v as usize) < pm.hierarchy.len(),
                "vertex {v} not in hierarchy"
            );
        }
    }
    assert!(
        merged.pages_lost > 0,
        "an 8-frame sweep over a third-corrupt heap must hit losses"
    );
    std::fs::remove_file(&file).ok();
}

/// Regression guard at the integration level: nudging the window by a
/// quarter of its width must fetch strictly fewer records than the cold
/// requery answering the same frame.
#[test]
fn small_shift_beats_cold_requery() {
    let db = build_db(21, 99);
    let b = db.bounds;
    let window = b.width().min(b.height()) * 0.5;
    let start = b.center();
    let step = Vec2::new(window * 0.25, 0.0);
    let r0 = Rect::centered_square(start, window);
    let r1 = Rect::centered_square(Vec2::new(start.x + step.x, start.y + step.y), window);

    let mut session = NavigationSession::new(&db, BoundaryPolicy::FetchOnMiss);
    session.move_to(&query_at(&db, r0));
    let warm = session.move_to(&query_at(&db, r1));
    let fresh = db.vd_multi_base(&query_at(&db, r1), BoundaryPolicy::FetchOnMiss, 16);
    assert!(
        warm.fetched_records < fresh.fetched_records,
        "warm frame fetched {} records, cold requery fetched {}",
        warm.fetched_records,
        fresh.fetched_records
    );
}

//! Property-based cross-system tests: for arbitrary terrains and query
//! parameters, all three systems must agree with the in-memory reference
//! semantics and with each other.

use std::sync::Arc;

use dm_baselines::PmDb;
use dm_core::{DirectMeshDb, DmBuildOptions};
use dm_geom::{Rect, Vec2};
use dm_mtm::builder::{build_pm, PmBuild, PmBuildConfig};
use dm_storage::{BufferPool, MemStore};
use dm_terrain::{generate, TriMesh};
use proptest::prelude::*;

fn setup(side: usize, seed: u64) -> (PmBuild, DirectMeshDb, PmDb) {
    let hf = generate::fractal_terrain(side, side, seed);
    let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());
    let mk = || Arc::new(BufferPool::new(Box::new(MemStore::new()), 2048));
    let dm = DirectMeshDb::build(mk(), &pm, &DmBuildOptions::default());
    let pmdb = PmDb::build(mk(), &pm);
    (pm, dm, pmdb)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn dm_and_pm_agree_with_the_cut_on_random_inputs(
        seed in 0u64..10_000,
        side in 9usize..16,
        e_frac in 0.0..0.8f64,
        roi_frac in 0.3..1.0f64,
    ) {
        let (pm, dm, pmdb) = setup(side, seed);
        let h = &pm.hierarchy;
        let e = h.e_max * e_frac * e_frac; // quadratic bias toward fine
        let roi = Rect::centered_square(
            dm.bounds.center(),
            dm.bounds.width() * roi_frac,
        );
        // Reference: the uniform cut restricted to the ROI.
        let mut want: Vec<u32> = h
            .uniform_cut(e)
            .into_iter()
            .filter(|&id| roi.contains(h.node(id).pos.xy()))
            .collect();
        want.sort_unstable();

        let res = dm.vi_query(&roi, e);
        let mut got: Vec<u32> = res.front.vertex_ids().collect();
        got.sort_unstable();
        prop_assert_eq!(&got, &want, "DM vs cut");

        // The PM baseline refines to the same answer except near the ROI
        // boundary, where out-of-ROI context stays coarse and a split can
        // be geometrically blocked (the paper's selective refinement
        // simply doesn't validate). Every cut member must be present or
        // covered by an active ancestor, and deficits must stay small.
        let pres = pmdb.vi_query(&roi, e);
        let pm_ids: std::collections::HashSet<u32> = pres
            .front
            .vertex_ids()
            .filter(|&v| {
                let n = pres.front.node(v).unwrap();
                roi.contains(n.pos.xy()) && n.interval().contains(e)
            })
            .collect();
        let mut missing = 0usize;
        for &id in &want {
            if pm_ids.contains(&id) {
                continue;
            }
            missing += 1;
            // An ancestor must still cover the spot (coarser boundary).
            let mut cur = id;
            let mut covered = false;
            loop {
                let p = h.node(cur).parent;
                if p == dm_mtm::NIL_ID {
                    break;
                }
                if pres.front.contains(p) {
                    covered = true;
                    break;
                }
                cur = p;
            }
            prop_assert!(covered, "cut node {id} neither present nor covered");
        }
        prop_assert!(
            missing <= want.len() / 3 + 3,
            "PM missed too many cut members: {missing} of {}",
            want.len()
        );
    }

    #[test]
    fn vi_meshes_are_always_valid(
        seed in 0u64..10_000,
        e_frac in 0.0..1.0f64,
        cx in 0.2..0.8f64,
        cy in 0.2..0.8f64,
        side_frac in 0.2..0.9f64,
    ) {
        let (pm, dm, _) = setup(11, seed);
        let e = pm.hierarchy.e_max * e_frac;
        let b = dm.bounds;
        let center = Vec2::new(
            b.min.x + cx * b.width(),
            b.min.y + cy * b.height(),
        );
        let roi = Rect::centered_square(center, b.width() * side_frac)
            .intersection(&b);
        if roi.is_empty() {
            return Ok(());
        }
        let res = dm.vi_query(&roi, e);
        let (mesh, _) = res.front.to_trimesh();
        prop_assert!(mesh.validate().is_ok(), "{:?}", mesh.validate());
    }
}

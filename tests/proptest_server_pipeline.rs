//! Pipelining equivalence: N requests pipelined down one connection are
//! answered **byte-for-byte identically** to the same N requests sent
//! one-at-a-time — same canonical meshes, same fetch counters, same
//! cold disk-access counts, in request order.
//!
//! This is the correctness contract the event-loop server's throughput
//! win rests on: the reactor may buffer and interleave I/O however it
//! likes, but one connection's requests execute strictly serially on
//! one worker at a time, so observable behaviour (including the
//! thread-attributed read counters) cannot depend on delivery timing.
//! Comparing the *encoded response frames* makes the check strictly
//! stronger than structural equality.

use std::sync::{Arc, OnceLock};

use dm_core::{DirectMeshDb, DmBuildOptions, VdQuery};
use dm_geom::{Rect, Vec2};
use dm_mtm::builder::{build_pm, PmBuildConfig};
use dm_mtm::PlaneTarget;
use dm_net::{Client, QueryOpts, QueryScope, Request, Response, StreamCounters};
use dm_server::{Server, ServerConfig};
use dm_storage::{BufferPool, MemStore};
use dm_terrain::{generate, TriMesh};
use proptest::collection;
use proptest::prelude::*;

static DB: OnceLock<DirectMeshDb> = OnceLock::new();

fn db() -> &'static DirectMeshDb {
    DB.get_or_init(|| {
        let hf = generate::fractal_terrain(17, 17, 11);
        let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());
        let pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), 4096));
        DirectMeshDb::build(pool, &pm, &DmBuildOptions::default())
    })
}

fn with_server<R>(f: impl FnOnce(&str) -> R) -> R {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let ctl = server.shutdown_handle();
    std::thread::scope(|s| {
        let handle = s.spawn(|| server.serve(db()).expect("serve"));
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&addr)));
        ctl.shutdown();
        handle.join().expect("server thread");
        match out {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        }
    })
}

/// A sub-rectangle of the terrain bounds from four unit fractions.
fn roi_from_fracs(b: &Rect, fx: f64, fy: f64, fw: f64, fh: f64) -> Rect {
    let span = Vec2::new(b.width(), b.height());
    let min = Vec2::new(b.min.x + span.x * fx * 0.5, b.min.y + span.y * fy * 0.5);
    Rect {
        min,
        max: Vec2::new(
            min.x + span.x * (0.2 + 0.8 * fw) * 0.5,
            min.y + span.y * (0.2 + 0.8 * fh) * 0.5,
        ),
    }
}

/// One generated request: a cold VI, a cold VD, or a stats call. Cold
/// queries reset the buffer pool before running, so a serial replay of
/// the same sequence reproduces the exact disk-access counts.
#[derive(Clone, Debug)]
struct GenReq {
    sel: u8,
    fracs: (f64, f64, f64, f64),
    keep: f64,
}

fn arb_req() -> impl Strategy<Value = GenReq> {
    (
        0u8..8,
        (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
        0.05f64..1.0,
    )
        .prop_map(|(sel, fracs, keep)| GenReq { sel, fracs, keep })
}

const COLD: QueryOpts = QueryOpts {
    cold: true,
    degraded: false,
    chunked: false,
    scope: QueryScope::World,
};

/// Zero the streaming byte counters in `Stats` answers before comparing:
/// they *measure* socket I/O, so they are the one part of a response that
/// legitimately depends on connection identity and delivery timing.
fn normalized(r: &Response) -> Response {
    match r {
        Response::Stats {
            stats, resolved_e, ..
        } => Response::Stats {
            stats: stats.clone(),
            resolved_e: resolved_e.clone(),
            conn: StreamCounters::default(),
            totals: StreamCounters::default(),
        },
        other => other.clone(),
    }
}

fn materialize(g: &GenReq) -> Request {
    let d = db();
    let roi = roi_from_fracs(&d.bounds, g.fracs.0, g.fracs.1, g.fracs.2, g.fracs.3);
    let e = d.e_for_points_fraction(g.keep);
    match g.sel {
        // Weight towards VI queries: they dominate real workloads.
        0..=4 => Request::ViQuery { opts: COLD, roi, e },
        5 | 6 => {
            let e_min = d.e_for_points_fraction(g.keep.max(0.3));
            let e_max = d.e_for_points_fraction(0.05).max(e_min);
            Request::VdQuery {
                opts: COLD,
                query: VdQuery {
                    roi,
                    target: PlaneTarget {
                        origin: roi.min,
                        dir: Vec2::new(0.0, 1.0),
                        e_min,
                        slope: (e_max - e_min) / roi.height().max(1e-9),
                        e_max,
                    },
                },
                policy: dm_core::BoundaryPolicy::FetchOnMiss,
                max_cubes: 4,
            }
        }
        _ => Request::Stats {
            resolve_keep: vec![g.keep],
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pipelined ≡ serial, at every window size, byte for byte.
    #[test]
    fn pipelined_equals_serial_byte_for_byte(
        gens in collection::vec(arb_req(), 1..10),
        window_seed in any::<usize>(),
    ) {
        let reqs: Vec<Request> = gens.iter().map(materialize).collect();
        let window = 1 + window_seed % reqs.len().max(1);
        with_server(|addr| {
            // Serial reference: same connection, one request in flight.
            let mut serial_client = Client::connect(addr).expect("connect serial");
            let mut serial = Vec::with_capacity(reqs.len());
            for req in &reqs {
                let mut got = serial_client
                    .exchange_pipelined(std::slice::from_ref(req), 1)
                    .expect("serial exchange");
                serial.push(got.pop().expect("one response"));
            }

            // Pipelined run: same requests, up to `window` in flight.
            let mut pipe_client = Client::connect(addr).expect("connect pipelined");
            let piped = pipe_client
                .exchange_pipelined(&reqs, window)
                .expect("pipelined exchange");

            assert_eq!(piped.len(), serial.len());
            for (i, (p, s)) in piped.iter().zip(&serial).enumerate() {
                assert_eq!(p.kind(), s.kind(), "response {i}: kind (window {window})");
                assert_eq!(
                    normalized(p).encode(),
                    normalized(s).encode(),
                    "response {i}: encoded bytes differ (window {window})"
                );
            }
        });
    }
}

/// Deterministic smoke for the same property, pinned at the largest
/// window — runs even when proptest shrinks elsewhere.
#[test]
fn eight_pipelined_cold_queries_match_serial() {
    let d = db();
    let e = d.e_for_points_fraction(0.5);
    let reqs: Vec<Request> = (0..8)
        .map(|i| Request::ViQuery {
            opts: COLD,
            roi: roi_from_fracs(&d.bounds, (i as f64) / 8.0, 0.25, 0.8, 0.8),
            e,
        })
        .collect();
    with_server(|addr| {
        let mut c = Client::connect(addr).expect("connect");
        let mut serial = Vec::new();
        for req in &reqs {
            serial.extend(
                c.exchange_pipelined(std::slice::from_ref(req), 1)
                    .expect("serial"),
            );
        }
        let piped = c.exchange_pipelined(&reqs, 8).expect("pipelined");
        for (i, (p, s)) in piped.iter().zip(&serial).enumerate() {
            assert_eq!(p.encode(), s.encode(), "response {i} differs");
        }
    });
}

//! Delta-frame streaming equivalence: a navigation session streamed as
//! ΔROI patches must reconstruct, frame by frame, the **exact** mesh the
//! monolithic full-frame transport ships — bit-for-bit vertices and
//! faces, same fetched-record counts, same integrity reports.
//!
//! The property is checked three ways, mirroring the repo's degradation
//! ladder: on a clean store, on a store injecting 1% transient read
//! faults (masked by the pool's retry budget, so determinism must
//! survive the retries), and on a truncated store serving a degraded
//! prefix (permanent, deterministic losses — the loss reports must
//! route identically through the delta tail). A final group fuzzes the
//! `FrameDelta` wire image (truncation + bit flips: typed errors, never
//! a panic) and proves a live session survives a client-side stream
//! corruption through the full-frame resync path.

use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use dm_core::{BoundaryPolicy, DirectMeshDb, DmBuildOptions, IntegrityReport, VdQuery};
use dm_geom::{Rect, Vec2};
use dm_mtm::builder::{build_pm, PmBuildConfig};
use dm_mtm::PlaneTarget;
use dm_net::wire::{Reader, Writer};
use dm_net::{canonical_mesh, Client, FrameDelta, FrontMirror, MeshResult, StreamMode};
use dm_server::{Server, ServerConfig};
use dm_storage::{BufferPool, FaultConfig, FaultInjector, FileStore, MemStore, PageStore};
use dm_terrain::{generate, TriMesh};
use proptest::collection;
use proptest::prelude::*;

const POOL_PAGES: usize = 4096;

static CLEAN: OnceLock<DirectMeshDb> = OnceLock::new();
static FAULTY: OnceLock<DirectMeshDb> = OnceLock::new();
static DEGRADED: OnceLock<DirectMeshDb> = OnceLock::new();

fn clean_db() -> &'static DirectMeshDb {
    CLEAN.get_or_init(|| {
        let hf = generate::fractal_terrain(33, 33, 7);
        let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());
        let pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), POOL_PAGES));
        DirectMeshDb::build(pool, &pm, &DmBuildOptions::default())
    })
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dm_stream_{}_{name}.db", std::process::id()))
}

fn build_file_db(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let hf = generate::fractal_terrain(33, 33, 7);
    let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());
    let pool = Arc::new(BufferPool::new(
        Box::new(FileStore::create(path).unwrap()),
        POOL_PAGES,
    ));
    let _ = DirectMeshDb::create_in(pool, &pm, &DmBuildOptions::default());
}

/// The same terrain behind a 1% transient-fault injector with the
/// default retry budget: every read eventually lands, so query results
/// must be *identical* to the clean store no matter how the two
/// sessions' reads interleave with the fault stream.
fn faulty_db() -> &'static DirectMeshDb {
    FAULTY.get_or_init(|| {
        let path = tmp("transient");
        build_file_db(&path);
        let injector: Box<dyn PageStore> = Box::new(FaultInjector::new(
            Box::new(FileStore::open(&path).unwrap()),
            FaultConfig::new(41).with_read_fail_rate(0.01),
        ));
        let pool = Arc::new(BufferPool::new(injector, POOL_PAGES));
        DirectMeshDb::open(pool).expect("transient faults are retried")
    })
}

/// The same terrain truncated mid-heap and opened degraded: permanent,
/// deterministic page losses that both transports must report alike.
fn degraded_db() -> &'static DirectMeshDb {
    DEGRADED.get_or_init(|| {
        let src = tmp("degraded_src");
        build_file_db(&src);
        let cut = tmp("degraded_cut");
        let _ = std::fs::remove_file(&cut);
        std::fs::copy(&src, &cut).unwrap();
        let pages = std::fs::metadata(&cut).unwrap().len() / dm_storage::PAGE_SIZE as u64;
        let f = std::fs::OpenOptions::new().write(true).open(&cut).unwrap();
        f.set_len(pages * 4 / 5 * dm_storage::PAGE_SIZE as u64)
            .unwrap();
        f.sync_all().unwrap();
        let pool = Arc::new(BufferPool::new(
            Box::new(FileStore::open_trimmed(&cut).unwrap()),
            POOL_PAGES,
        ));
        let mut report = IntegrityReport::default();
        DirectMeshDb::open_degraded(pool, &mut report).expect("catalog survives the cut")
    })
}

fn with_server<R>(db: &DirectMeshDb, f: impl FnOnce(&str) -> R) -> R {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let ctl = server.shutdown_handle();
    std::thread::scope(|s| {
        let handle = s.spawn(|| server.serve(db).expect("serve"));
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&addr)));
        ctl.shutdown();
        handle.join().expect("server thread");
        match out {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        }
    })
}

/// A viewpoint query over a sub-window derived from four unit fractions.
fn query_from_fracs(db: &DirectMeshDb, fx: f64, fy: f64, fw: f64, fh: f64) -> VdQuery {
    let b = db.bounds;
    let span = Vec2::new(b.width(), b.height());
    let min = Vec2::new(b.min.x + span.x * fx * 0.5, b.min.y + span.y * fy * 0.5);
    let roi = Rect {
        min,
        max: Vec2::new(
            min.x + span.x * (0.2 + 0.8 * fw) * 0.5,
            min.y + span.y * (0.2 + 0.8 * fh) * 0.5,
        ),
    };
    let e_min = db.e_for_points_fraction(0.4);
    let e_far = db.e_for_points_fraction(0.05).max(e_min);
    VdQuery {
        roi,
        target: PlaneTarget {
            origin: roi.min,
            dir: Vec2::new(0.0, 1.0),
            e_min,
            slope: (e_far - e_min) / roi.height().max(1e-9),
            e_max: e_far,
        },
    }
}

/// Bit-level equality: coordinates compared as bit patterns so a NaN in
/// the terrain can never mask a reconstruction divergence.
fn assert_bit_identical(label: &str, a: &MeshResult, b: &MeshResult) {
    assert_eq!(a.vertices.len(), b.vertices.len(), "{label}: vertex count");
    for (x, y) in a.vertices.iter().zip(&b.vertices) {
        assert!(
            x.id == y.id
                && x.x.to_bits() == y.x.to_bits()
                && x.y.to_bits() == y.y.to_bits()
                && x.z.to_bits() == y.z.to_bits(),
            "{label}: vertex {} differs",
            x.id
        );
    }
    assert_eq!(a.faces, b.faces, "{label}: face sets differ");
    assert_eq!(a.fetched_records, b.fetched_records, "{label}: fetch count");
    assert_eq!(a.cubes, b.cubes, "{label}: cube count");
    assert_eq!(a.report, b.report, "{label}: integrity reports differ");
}

/// Drive two sessions on one server down the same path — one on the
/// monolithic transport, one streamed with the given per-frame modes —
/// and assert every reconstructed frame is bit-identical, including a
/// local shadow session as the ground truth.
fn assert_stream_equivalence(
    db: &DirectMeshDb,
    queries: &[VdQuery],
    modes: &[StreamMode],
    degraded: bool,
) {
    with_server(db, |addr| {
        let mut client = Client::connect(addr).expect("connect");
        let full_session = client
            .open_session(BoundaryPolicy::FetchOnMiss, 8, false)
            .expect("open full session");
        let delta_session = client
            .open_session(BoundaryPolicy::FetchOnMiss, 8, false)
            .expect("open delta session");
        let mut shadow =
            dm_core::NavigationSession::new(db, BoundaryPolicy::FetchOnMiss).with_max_cubes(8);
        let mut mirror = FrontMirror::new();
        let mut saw_delta = false;
        for (i, q) in queries.iter().enumerate() {
            let full = client
                .frame_query(full_session, *q, degraded)
                .expect("full frame");
            let mode = modes[i % modes.len()];
            let (streamed, info) = client
                .frame_query_streamed(delta_session, *q, degraded, mode, &mut mirror)
                .expect("streamed frame");
            saw_delta |= info.was_delta;
            assert_bit_identical(&format!("frame {i} ({mode:?})"), &streamed, &full);
            if degraded {
                let (_, report) = shadow.try_move_to(q).expect("shadow frame");
                assert_eq!(streamed.report, report, "frame {i}: shadow report");
            } else {
                let (stats, report) = shadow.try_move_to(q).expect("shadow frame");
                assert!(report.is_clean(), "clean store produced losses");
                let (lv, lf) = canonical_mesh(shadow.front());
                assert_eq!(streamed.vertices, lv, "frame {i}: shadow vertices");
                assert_eq!(streamed.faces, lf, "frame {i}: shadow faces");
                assert_eq!(
                    streamed.fetched_records, stats.fetched_records as u64,
                    "frame {i}: shadow fetch count"
                );
            }
        }
        // Mixed modes may legitimately never ship a patch (a Delta frame
        // right after a Full one is a full reset), but an all-delta walk
        // of two or more frames must.
        if queries.len() > 1 && modes.iter().all(|m| matches!(m, StreamMode::Delta)) {
            assert!(
                saw_delta,
                "all-delta multi-frame walk never shipped a delta"
            );
        }
        client.close_session(full_session).expect("close full");
        client.close_session(delta_session).expect("close delta");
    });
}

fn arb_mode() -> impl Strategy<Value = StreamMode> {
    (0u8..3).prop_map(|s| match s {
        0 => StreamMode::Delta,
        1 => StreamMode::Auto,
        _ => StreamMode::Full,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random paths, random per-frame transport modes, clean store.
    #[test]
    fn delta_stream_reconstructs_full_frames(
        fracs in collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 2..7),
        modes in collection::vec(arb_mode(), 1..4),
    ) {
        let db = clean_db();
        let queries: Vec<VdQuery> = fracs
            .iter()
            .map(|&(x, y, w, h)| query_from_fracs(db, x, y, w, h))
            .collect();
        assert_stream_equivalence(db, &queries, &modes, false);
    }

    /// Same property with 1% transient read faults underneath: retries
    /// mask them, so the streamed reconstruction must stay identical.
    #[test]
    fn delta_stream_survives_transient_faults(
        fracs in collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 2..5),
    ) {
        let db = faulty_db();
        let queries: Vec<VdQuery> = fracs
            .iter()
            .map(|&(x, y, w, h)| query_from_fracs(db, x, y, w, h))
            .collect();
        assert_stream_equivalence(db, &queries, &[StreamMode::Delta], false);
    }

    /// Decoding a truncated or bit-flipped `FrameDelta` image returns a
    /// typed error or a (harmless) different value — it never panics.
    #[test]
    fn corrupted_frame_delta_images_never_panic(
        cut_frac in 0.0f64..1.0,
        flip_bit in any::<usize>(),
        seq in any::<u64>(),
    ) {
        let d = FrameDelta {
            seq,
            base_seq: seq.wrapping_sub(1),
            is_delta: true,
            removed_vertices: vec![1, 8, 20],
            added_vertices: vec![dm_net::WireVertex { id: 2, x: 0.5, y: -1.0, z: 3.25 }],
            removed_faces: vec![[1, 8, 20]],
            added_faces: vec![[2, 9, 30], [2, 30, 31]],
            tail: dm_net::ResultTail::default(),
        };
        let mut w = Writer::new();
        d.encode(&mut w);
        let mut bytes = w.into_inner();

        // Truncation: every proper prefix must fail cleanly.
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let mut r = Reader::new(&bytes[..cut.min(bytes.len().saturating_sub(1))]);
        let _ = FrameDelta::decode(&mut r).and_then(|_| r.finish());

        // Bit flip: decode may fail or may yield a different delta; a
        // FrontMirror applying it must also never panic.
        let bit = flip_bit % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        let mut r = Reader::new(&bytes);
        if let Ok(mangled) = FrameDelta::decode(&mut r).and_then(|v| r.finish().map(|()| v)) {
            let mut mirror = FrontMirror::new();
            let _ = mirror.apply(&mangled);
        }
    }
}

/// Degraded store: page losses are permanent and deterministic, so both
/// transports must ship the same meshes *and the same loss reports* —
/// the `IntegrityReport` rides the delta tail unchanged.
#[test]
fn delta_stream_matches_full_frames_on_a_degraded_store() {
    let db = degraded_db();
    let queries: Vec<VdQuery> = [
        (0.1, 0.1, 0.8, 0.8),
        (0.3, 0.2, 0.7, 0.7),
        (0.5, 0.4, 0.6, 0.9),
        (0.6, 0.6, 0.9, 0.5),
        (0.2, 0.8, 0.5, 0.6),
    ]
    .iter()
    .map(|&(x, y, w, h)| query_from_fracs(db, x, y, w, h))
    .collect();
    assert_stream_equivalence(db, &queries, &[StreamMode::Delta, StreamMode::Auto], true);
}

/// A client whose mirror is corrupted mid-walk (standing in for any
/// stream-level corruption that survives decode) must resync through a
/// full-frame re-request — transparently, on the same session, with the
/// reconstructed frame still bit-identical to the shadow session.
#[test]
fn corrupted_mirror_resyncs_through_a_full_frame() {
    let db = clean_db();
    let queries: Vec<VdQuery> = (0..6)
        .map(|i| query_from_fracs(db, f64::from(i) / 6.0, f64::from(i) / 8.0, 0.6, 0.6))
        .collect();
    with_server(db, |addr| {
        let mut client = Client::connect(addr).expect("connect");
        let session = client
            .open_session(BoundaryPolicy::FetchOnMiss, 8, false)
            .expect("open session");
        let mut shadow =
            dm_core::NavigationSession::new(db, BoundaryPolicy::FetchOnMiss).with_max_cubes(8);
        let mut mirror = FrontMirror::new();
        for (i, q) in queries.iter().enumerate() {
            // Clobber the client's base state mid-walk: the next delta
            // can no longer apply and must trigger the resync path.
            if i == 3 {
                mirror.reset();
            }
            let (m, info) = client
                .frame_query_streamed(session, *q, false, StreamMode::Delta, &mut mirror)
                .expect("streamed frame");
            if i == 3 {
                assert!(info.resynced, "frame 3 must resync after corruption");
            }
            // Frame 4 is a full reset (the resync answer cleared the
            // server's delta base); everything else ships as a delta.
            if i > 0 && i != 3 && i != 4 {
                assert!(info.was_delta, "frame {i} should ship as a delta");
                assert!(!info.resynced, "frame {i} resynced unexpectedly");
            }
            shadow.try_move_to(q).expect("shadow frame");
            let (lv, lf) = canonical_mesh(shadow.front());
            assert_eq!(m.vertices, lv, "frame {i}: vertices");
            assert_eq!(m.faces, lf, "frame {i}: faces");
        }
        client.close_session(session).expect("close session");
    });
}

//! Property tests for the dm-net wire protocol.
//!
//! Two families of properties:
//!
//! * **Round-trip**: every request and response variant — with fully
//!   adversarial payloads (NaN / infinity / subnormal coordinates from
//!   raw bit patterns, empty and non-trivial meshes) — re-encodes to
//!   the exact same bytes after a decode. Byte-level comparison
//!   side-steps the `NaN != NaN` problem while being strictly stronger
//!   than structural equality.
//!
//! * **Rejection**: corrupt inputs never panic and never round-trip.
//!   Any single byte flip in a framed message is caught (the frame
//!   CRC32 covers header and payload), any strict prefix of a frame is
//!   an error rather than a short read, and arbitrary garbage fed to
//!   the payload decoders returns a typed error instead of crashing or
//!   allocating unboundedly.

use dm_core::record::RecordCodec;
use dm_core::{BoundaryPolicy, DbStats, FetchCounters, IntegrityReport, VdQuery};
use dm_geom::{Rect, Vec2};
use dm_mtm::PlaneTarget;
use dm_net::{
    encode_frame, read_frame, ErrorCode, Frame, FrameAssembler, FrameDelta, FrameEvent, MeshChunk,
    MeshResult, QueryOpts, QueryScope, Request, Response, StreamCounters, StreamMode, WireVertex,
};
use proptest::prelude::*;

/// Arbitrary `f64` including NaN payloads, infinities, and subnormals.
fn bits_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

fn arb_vec2() -> impl Strategy<Value = Vec2> {
    (bits_f64(), bits_f64()).prop_map(|(x, y)| Vec2::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_vec2(), arb_vec2()).prop_map(|(min, max)| Rect { min, max })
}

fn arb_target() -> impl Strategy<Value = PlaneTarget> {
    (arb_vec2(), arb_vec2(), bits_f64(), bits_f64(), bits_f64()).prop_map(
        |(origin, dir, e_min, slope, e_max)| PlaneTarget {
            origin,
            dir,
            e_min,
            slope,
            e_max,
        },
    )
}

fn arb_vd_query() -> impl Strategy<Value = VdQuery> {
    (arb_rect(), arb_target()).prop_map(|(roi, target)| VdQuery { roi, target })
}

fn arb_policy() -> impl Strategy<Value = BoundaryPolicy> {
    any::<bool>().prop_map(|b| {
        if b {
            BoundaryPolicy::FetchOnMiss
        } else {
            BoundaryPolicy::Skip
        }
    })
}

fn arb_opts() -> impl Strategy<Value = QueryOpts> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<u32>(),
    )
        .prop_map(|(cold, degraded, chunked, scoped, region)| QueryOpts {
            cold,
            degraded,
            chunked,
            scope: if scoped {
                QueryScope::Region(region)
            } else {
                QueryScope::World
            },
        })
}

fn arb_stream_mode() -> impl Strategy<Value = StreamMode> {
    (0u8..3).prop_map(|m| match m {
        0 => StreamMode::Full,
        1 => StreamMode::Delta,
        _ => StreamMode::Auto,
    })
}

fn arb_ascii(max_len: usize) -> impl Strategy<Value = String> {
    collection::vec(32u8..127, 0..max_len)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii"))
}

/// One strategy covering every request variant (selector-dispatched; the
/// vendored proptest shim has no `prop_oneof!`).
fn arb_request() -> impl Strategy<Value = Request> {
    (
        0u8..8,
        (arb_opts(), arb_rect(), bits_f64()),
        (arb_vd_query(), arb_policy(), 0u32..1000),
        (collection::vec((arb_rect(), bits_f64()), 0..8), 0u32..64),
        (
            any::<u64>(),
            any::<bool>(),
            collection::vec(bits_f64(), 0..6),
            arb_stream_mode(),
        ),
    )
        .prop_map(
            |(
                sel,
                (opts, roi, e),
                (query, policy, max_cubes),
                (queries, threads),
                (session, flag, resolve_keep, stream),
            )| match sel {
                0 => Request::ViQuery { opts, roi, e },
                1 => Request::VdQuery {
                    opts,
                    query,
                    policy,
                    max_cubes,
                },
                2 => Request::BatchQuery {
                    opts,
                    queries,
                    threads,
                },
                3 => Request::OpenSession {
                    policy,
                    max_cubes,
                    full_requery: flag,
                },
                4 => Request::FrameQuery {
                    session,
                    query,
                    degraded: flag,
                    stream,
                },
                5 => Request::CloseSession { session },
                6 => Request::Stats { resolve_keep },
                _ => Request::Shutdown,
            },
        )
}

/// Vertices with strictly ascending unique ids (the canonical-mesh
/// invariant the codec enforces), arbitrary coordinate bit patterns.
fn arb_vertices() -> impl Strategy<Value = Vec<WireVertex>> {
    collection::vec((any::<u32>(), (bits_f64(), bits_f64(), bits_f64())), 0..32).prop_map(
        |entries| {
            let mut ids: Vec<u32> = entries.iter().map(|(id, _)| *id).collect();
            ids.sort_unstable();
            ids.dedup();
            ids.into_iter()
                .zip(entries)
                .map(|(id, (_, (x, y, z)))| WireVertex { id, x, y, z })
                .collect()
        },
    )
}

fn arb_face() -> impl Strategy<Value = [u32; 3]> {
    (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(|(a, b, c)| [a, b, c])
}

fn arb_report() -> impl Strategy<Value = IntegrityReport> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        collection::vec(arb_ascii(40), 0..4),
    )
        .prop_map(
            |(pages_lost, points_lost, retries, errors)| IntegrityReport {
                pages_lost,
                points_lost,
                retries,
                errors,
            },
        )
}

fn arb_mesh() -> impl Strategy<Value = MeshResult> {
    (
        (arb_vertices(), collection::vec(arb_face(), 0..32)),
        (any::<u64>(), any::<u64>(), any::<u32>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        arb_report(),
    )
        .prop_map(
            |((vertices, faces), (fetched_records, disk_accesses, cubes), (p, ex, de), report)| {
                MeshResult {
                    vertices,
                    faces,
                    fetched_records,
                    disk_accesses,
                    cubes,
                    counters: FetchCounters {
                        pages_scanned: p,
                        records_examined: ex,
                        records_decoded: de,
                    },
                    report,
                }
            },
        )
}

fn arb_db_stats() -> impl Strategy<Value = DbStats> {
    (
        (
            any::<u32>(),
            any::<bool>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (any::<u64>(), any::<u64>(), any::<u32>(), any::<u64>()),
        (any::<u64>(), any::<u32>(), any::<u64>()),
        (bits_f64(), arb_rect()),
    )
        .prop_map(
            |(
                (catalog_version, compact, n_records, n_leaves, n_roots),
                (heap_pages, total_pages, btree_height, btree_len),
                (rtree_nodes, rtree_height, rtree_len),
                (e_max, bounds),
            )| DbStats {
                catalog_version,
                codec: if compact {
                    RecordCodec::Compact
                } else {
                    RecordCodec::Flat
                },
                n_records,
                n_leaves,
                n_roots,
                heap_pages,
                total_pages,
                btree_height,
                btree_len,
                rtree_nodes,
                rtree_height,
                rtree_len,
                e_max,
                bounds,
            },
        )
}

/// Strictly ascending unique vertex ids (the id-set codec invariant).
fn arb_id_set() -> impl Strategy<Value = Vec<u32>> {
    collection::vec(any::<u32>(), 0..16).prop_map(|mut ids| {
        ids.sort_unstable();
        ids.dedup();
        ids
    })
}

fn arb_stream_counters() -> impl Strategy<Value = StreamCounters> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
        |(bytes_in, bytes_out, delta_frames, full_frames)| StreamCounters {
            bytes_in,
            bytes_out,
            delta_frames,
            full_frames,
        },
    )
}

/// Either a genuine delta patch or a full-reset frame, both respecting
/// the codec invariants (ascending id sets; resets carry no removals).
fn arb_frame_delta() -> impl Strategy<Value = FrameDelta> {
    (
        (any::<u64>(), any::<u64>(), any::<bool>()),
        arb_id_set(),
        arb_vertices(),
        (
            collection::vec(arb_face(), 0..16),
            collection::vec(arb_face(), 0..16),
        ),
        arb_mesh(),
    )
        .prop_map(
            |(
                (seq, base_seq, is_delta),
                removed_vertices,
                added_vertices,
                (removed_faces, added_faces),
                mesh,
            )| {
                let tail = mesh.tail();
                if is_delta {
                    FrameDelta {
                        seq,
                        base_seq,
                        is_delta: true,
                        removed_vertices,
                        added_vertices,
                        removed_faces,
                        added_faces,
                        tail,
                    }
                } else {
                    FrameDelta::full_reset(seq, added_vertices, added_faces, tail)
                }
            },
        )
}

fn arb_mesh_chunk() -> impl Strategy<Value = MeshChunk> {
    (
        (any::<u32>(), any::<bool>()),
        arb_vertices(),
        collection::vec(arb_face(), 0..16),
        arb_mesh(),
    )
        .prop_map(|((seq, last), vertices, faces, mesh)| MeshChunk {
            seq,
            last,
            vertices,
            faces,
            tail: mesh.tail(),
        })
}

/// One strategy covering every response variant.
fn arb_response() -> impl Strategy<Value = Response> {
    (
        0u8..10,
        arb_mesh(),
        (any::<u64>(), collection::vec(arb_mesh(), 0..3)),
        (
            arb_db_stats(),
            collection::vec(bits_f64(), 0..6),
            arb_stream_counters(),
            arb_stream_counters(),
        ),
        (1u8..8, arb_ascii(60), any::<u64>()),
        (arb_frame_delta(), arb_mesh_chunk()),
    )
        .prop_map(
            |(
                sel,
                mesh,
                (total, items),
                (stats, resolved_e, conn, totals),
                (code, message, retry),
                (delta, chunk),
            )| match sel {
                0 => Response::Mesh(mesh),
                1 => Response::Batch {
                    total_disk_accesses: total,
                    items,
                },
                2 => Response::SessionOpened { session: total },
                3 => Response::SessionClosed,
                4 => Response::Stats {
                    stats,
                    resolved_e,
                    conn,
                    totals,
                },
                5 => Response::Error {
                    code: ErrorCode::from_code(code).expect("1..=7 are valid codes"),
                    message,
                },
                6 => Response::Overloaded {
                    retry_after_ms: retry,
                },
                7 => Response::FrameDelta(delta),
                8 => Response::MeshChunk(chunk),
                _ => Response::ShutdownAck,
            },
        )
}

/// Read one frame out of an in-memory byte buffer.
fn read_bytes(bytes: &[u8]) -> dm_net::WireResult<FrameEvent> {
    let mut cursor = std::io::Cursor::new(bytes);
    read_frame(&mut cursor)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// decode(encode(request)) re-encodes to the identical payload bytes.
    #[test]
    fn request_roundtrip_bit_exact(req in arb_request()) {
        let payload = req.encode();
        let frame = Frame { kind: req.kind(), payload: payload.clone() };
        let back = Request::decode(&frame).expect("own encoding must decode");
        prop_assert_eq!(back.kind(), req.kind());
        prop_assert_eq!(back.encode(), payload);
    }

    /// decode(encode(response)) re-encodes to the identical payload bytes.
    #[test]
    fn response_roundtrip_bit_exact(resp in arb_response()) {
        let payload = resp.encode();
        let frame = Frame { kind: resp.kind(), payload: payload.clone() };
        let back = Response::decode(&frame).expect("own encoding must decode");
        prop_assert_eq!(back.kind(), resp.kind());
        prop_assert_eq!(back.encode(), payload);
    }

    /// A full framed message survives the transport layer byte-exactly.
    #[test]
    fn framed_roundtrip(resp in arb_response()) {
        let bytes = encode_frame(resp.kind(), &resp.encode());
        match read_bytes(&bytes).expect("own frame must read") {
            FrameEvent::Frame(f) => {
                prop_assert_eq!(f.kind, resp.kind());
                prop_assert_eq!(f.payload, resp.encode());
            }
            other => prop_assert!(false, "expected frame, got {other:?}"),
        }
    }

    /// Any single byte flip anywhere in a framed message is detected.
    #[test]
    fn single_byte_flips_are_rejected(
        req in arb_request(),
        pos_seed in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let bytes = encode_frame(req.kind(), &req.encode());
        let pos = pos_seed % bytes.len();
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= flip;
        match read_bytes(&corrupt) {
            Err(_) => {}
            Ok(FrameEvent::Frame(f)) => prop_assert!(
                false,
                "flip of byte {pos} by {flip:#x} went undetected (kind {:#x})",
                f.kind
            ),
            Ok(other) => prop_assert!(false, "corrupt frame read as {other:?}"),
        }
    }

    /// Every strict prefix of a frame is an error — never a short read.
    #[test]
    fn truncated_frames_are_rejected(req in arb_request(), cut_seed in any::<usize>()) {
        let bytes = encode_frame(req.kind(), &req.encode());
        let cut = 1 + cut_seed % (bytes.len() - 1);
        prop_assert!(
            read_bytes(&bytes[..cut]).is_err(),
            "prefix of {cut}/{} bytes did not error",
            bytes.len()
        );
    }

    /// Garbage payloads fed straight to the decoders return typed errors;
    /// they never panic and never allocate past the input size.
    #[test]
    fn garbage_payloads_do_not_panic(
        kind in any::<u8>(),
        payload in collection::vec(any::<u8>(), 0..256),
    ) {
        let frame = Frame { kind, payload };
        let _ = Request::decode(&frame);
        let _ = Response::decode(&frame);
    }

    /// Incremental reassembly is delivery-invariant: however a stream of
    /// frames is split into chunks (any cut points, including mid-header
    /// and mid-payload), the assembler yields exactly the frames that
    /// whole-buffer delivery yields, in order, byte for byte. This is
    /// the property the event-loop server's read path rests on.
    #[test]
    fn frame_reassembly_is_split_invariant(
        resps in collection::vec(arb_response(), 1..4),
        splits in collection::vec(any::<usize>(), 0..12),
    ) {
        let mut stream = Vec::new();
        for r in &resps {
            stream.extend_from_slice(&encode_frame(r.kind(), &r.encode()));
        }

        // Reference: the whole stream delivered in one push.
        let mut asm = FrameAssembler::new();
        asm.push(&stream);
        let mut whole = Vec::new();
        while let Some(f) = asm.next_frame().expect("clean stream") {
            whole.push(f);
        }
        prop_assert_eq!(whole.len(), resps.len());
        prop_assert!(!asm.mid_frame(), "clean stream left residue");

        // Same stream delivered at arbitrary split points.
        let mut cuts: Vec<usize> = splits.iter().map(|s| s % (stream.len() + 1)).collect();
        cuts.push(0);
        cuts.push(stream.len());
        cuts.sort_unstable();
        cuts.dedup();
        let mut asm = FrameAssembler::new();
        let mut pieces = Vec::new();
        for w in cuts.windows(2) {
            asm.push(&stream[w[0]..w[1]]);
            while let Some(f) = asm.next_frame().expect("clean stream") {
                pieces.push(f);
            }
        }
        prop_assert_eq!(pieces.len(), whole.len());
        for (i, (a, b)) in pieces.iter().zip(&whole).enumerate() {
            prop_assert_eq!(a.kind, b.kind, "frame {} kind", i);
            prop_assert_eq!(&a.payload, &b.payload, "frame {} payload", i);
        }
    }

    /// Untrusted bytes pushed into the assembler in arbitrary chunks
    /// never panic: every outcome is a clean frame, a need-more-bytes,
    /// or a typed desync error (at which point a server drops the peer).
    #[test]
    fn frame_assembler_never_panics_on_untrusted_bytes(
        data in collection::vec(any::<u8>(), 0..4096),
        splits in collection::vec(any::<usize>(), 0..8),
    ) {
        let mut cuts: Vec<usize> = splits.iter().map(|s| s % (data.len() + 1)).collect();
        cuts.push(0);
        cuts.push(data.len());
        cuts.sort_unstable();
        cuts.dedup();
        let mut asm = FrameAssembler::new();
        'outer: for w in cuts.windows(2) {
            asm.push(&data[w[0]..w[1]]);
            loop {
                match asm.next_frame() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(_) => break 'outer, // desync: connection would drop
                }
            }
        }
    }
}

//! Property-style equivalence tests: the Direct Mesh query results must
//! match the in-memory reference semantics for arbitrary (ROI, LOD)
//! combinations, and the query algorithms must agree with each other.

use std::sync::Arc;

use dm_core::{BoundaryPolicy, DirectMeshDb, DmBuildOptions, VdQuery};
use dm_geom::{Rect, Vec2};
use dm_mtm::builder::{build_pm, PmBuild, PmBuildConfig};
use dm_mtm::refine::LodTarget;
use dm_mtm::PlaneTarget;
use dm_storage::{BufferPool, MemStore};
use dm_terrain::{generate, TriMesh};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn setup(seed: u64) -> (PmBuild, DirectMeshDb) {
    let hf = generate::fractal_terrain(21, 21, seed);
    let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());
    let pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), 4096));
    let db = DirectMeshDb::build(pool, &pm, &DmBuildOptions::default());
    (pm, db)
}

#[test]
fn vi_query_equals_cut_for_random_roi_lod() {
    let (pm, db) = setup(11);
    let h = &pm.hierarchy;
    let mut rng = StdRng::seed_from_u64(1);
    for trial in 0..40 {
        let e = h.e_max * rng.random_range(0.0..0.6f64).powi(2);
        let cx = rng.random_range(db.bounds.min.x..db.bounds.max.x);
        let cy = rng.random_range(db.bounds.min.y..db.bounds.max.y);
        let side = rng.random_range(2.0..db.bounds.width());
        let roi = Rect::from_corners(
            Vec2::new(cx - side / 2.0, cy - side / 2.0),
            Vec2::new(cx + side / 2.0, cy + side / 2.0),
        );
        let res = db.vi_query(&roi, e);
        let mut got: Vec<u32> = res.front.vertex_ids().collect();
        let mut want: Vec<u32> = h
            .uniform_cut(e)
            .into_iter()
            .filter(|&id| roi.contains(h.node(id).pos.xy()))
            .collect();
        got.sort();
        want.sort();
        assert_eq!(got, want, "trial {trial}: roi {roi:?}, e {e}");
    }
}

#[test]
fn vi_triangles_never_leave_the_roi_or_violate_lod() {
    let (pm, db) = setup(13);
    let h = &pm.hierarchy;
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..20 {
        let e = h.e_max * rng.random_range(0.001..0.3);
        let side = rng.random_range(db.bounds.width() * 0.3..db.bounds.width() * 0.8);
        let roi = Rect::from_corners(
            db.bounds.min,
            Vec2::new(db.bounds.min.x + side, db.bounds.min.y + side),
        );
        let res = db.vi_query(&roi, e);
        for id in res.front.vertex_ids() {
            let n = res.front.node(id).unwrap();
            assert!(roi.contains(n.pos.xy()));
            assert!(
                n.interval().contains(e),
                "vertex {id} not part of the LOD-{e} cut"
            );
        }
        let (mesh, _) = res.front.to_trimesh();
        mesh.validate().expect("VI mesh structurally valid");
    }
}

#[test]
fn single_base_satisfies_plane_targets_for_random_queries() {
    let (_, db) = setup(17);
    let mut rng = StdRng::seed_from_u64(3);
    for trial in 0..15 {
        let angle = rng.random_range(0.05..0.95);
        let e_min = db.e_max * rng.random_range(0.0001..0.01);
        let run = db.bounds.height();
        let slope = db.e_max / run * angle;
        let q = VdQuery {
            roi: db.bounds,
            target: PlaneTarget {
                origin: db.bounds.min,
                dir: Vec2::new(0.0, 1.0),
                e_min,
                slope,
                e_max: (e_min + slope * run).min(db.e_max),
            },
        };
        let res = db.vd_single_base(&q, BoundaryPolicy::Skip);
        assert_eq!(
            res.refine.blocked, 0,
            "trial {trial}: full-ROI query must not block"
        );
        for id in res.front.vertex_ids() {
            let n = res.front.node(id).unwrap();
            assert!(
                n.is_leaf() || n.e_lo <= q.target.required(n.pos.x, n.pos.y) + 1e-9,
                "trial {trial}: vertex {id} violates the plane"
            );
        }
        let (mesh, _) = res.front.to_trimesh();
        mesh.validate().unwrap();
    }
}

#[test]
fn multi_base_converges_to_single_base_answers() {
    // MB assembles the front directly from the fetched union (each node
    // judged at its own position), SB refines top-down (each split judged
    // at the parent's position). The fronts agree except where merged
    // vertex positions drift across a steep plane — negligible at real
    // scales, visible on toy hierarchies, hence moderate angles here.
    let hf = generate::fractal_terrain(33, 33, 19);
    let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());
    let pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), 4096));
    let db = DirectMeshDb::build(pool, &pm, &DmBuildOptions::default());
    let mut rng = StdRng::seed_from_u64(4);
    let mut total_union = 0usize;
    let mut total_inter = 0usize;
    for _ in 0..10 {
        let angle = rng.random_range(0.15..0.5);
        let e_min = db.e_max * 0.001;
        let run = db.bounds.height();
        let slope = db.e_max / run * angle;
        let q = VdQuery {
            roi: db.bounds,
            target: PlaneTarget {
                origin: db.bounds.min,
                dir: Vec2::new(0.0, 1.0),
                e_min,
                slope,
                e_max: (e_min + slope * run).min(db.e_max),
            },
        };
        let sb = db.vd_single_base(&q, BoundaryPolicy::Skip);
        let mb = db.vd_multi_base(&q, BoundaryPolicy::Skip, 8);
        assert!(mb.fetched_records <= sb.fetched_records);
        let (mesh, _) = mb.front.to_trimesh();
        mesh.validate().expect("MB mesh structurally valid");
        let a: std::collections::HashSet<u32> = sb.front.vertex_ids().collect();
        let b: std::collections::HashSet<u32> = mb.front.vertex_ids().collect();
        total_inter += a.intersection(&b).count();
        total_union += a.union(&b).count();
    }
    let jaccard = total_inter as f64 / total_union as f64;
    // MB seeds from the staircase fetch, SB from the full cube; their
    // fronts coincide except where the different seed levels leave
    // different (equally valid) anti-chains near strip boundaries.
    assert!(jaccard > 0.7, "MB diverges from SB overall: {jaccard:.3}");
}

#[test]
fn fetch_on_miss_only_adds_refinement() {
    let (_, db) = setup(23);
    let roi = Rect::centered_square(db.bounds.center(), db.bounds.width() * 0.4);
    let q = VdQuery {
        roi,
        target: PlaneTarget {
            origin: roi.min,
            dir: Vec2::new(0.0, 1.0),
            e_min: db.e_max * 0.0005,
            slope: db.e_max * 0.3 / roi.height(),
            e_max: db.e_max * 0.3,
        },
    };
    let skip = db.vd_single_base(&q, BoundaryPolicy::Skip);
    let fetch = db.vd_single_base(&q, BoundaryPolicy::FetchOnMiss);
    let a: std::collections::HashSet<u32> = skip.front.vertex_ids().collect();
    let b: std::collections::HashSet<u32> = fetch.front.vertex_ids().collect();
    // Fetch-on-miss refines strictly further: no active vertex of `fetch`
    // is an ancestor of an active vertex of `skip`.
    assert!(b.len() >= a.len());
    let (mesh_a, _) = skip.front.to_trimesh();
    let (mesh_b, _) = fetch.front.to_trimesh();
    mesh_a.validate().unwrap();
    mesh_b.validate().unwrap();
}

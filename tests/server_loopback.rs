//! Loopback integration tests: the served query path must be
//! observationally identical to calling the library directly.
//!
//! A real `dm-server` instance answers over a loopback TCP socket while
//! the test holds a reference to the *same* database object, so every
//! remote answer can be compared bit-for-bit against a local run —
//! canonical vertex/face sets, fetched-record counts, and (for serial
//! cold queries) the logical disk-access counts the paper's cost model
//! is built on.
//!
//! A second group serves a fault-injected file store and checks the
//! degradation contract across the wire: degraded queries answer with
//! loss reports, strict queries fail with a *typed* error, and the
//! connection (and server) survive both.

use std::sync::Arc;

use dm_core::{
    BoundaryPolicy, DirectMeshDb, DmBuildOptions, FetchCounters, IntegrityReport, VdQuery,
};
use dm_geom::{Rect, Vec2};
use dm_mtm::builder::{build_pm, PmBuildConfig};
use dm_mtm::PlaneTarget;
use dm_net::{canonical_mesh, Client, MeshResult, QueryOpts, QueryScope, WireError};
use dm_server::{Server, ServerConfig};
use dm_storage::{
    thread_reads, BufferPool, FaultConfig, FaultInjector, FileStore, MemStore, PageStore,
};
use dm_terrain::{generate, TriMesh};

const POOL_PAGES: usize = 4096;

fn build_db(side: usize, seed: u64) -> DirectMeshDb {
    let hf = generate::fractal_terrain(side, side, seed);
    let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());
    let pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), POOL_PAGES));
    DirectMeshDb::build(pool, &pm, &DmBuildOptions::default())
}

/// Serve `db` on a loopback socket for the duration of `f`. Shutdown is
/// signalled through the handle even when `f` panics, so a failing
/// assertion aborts the test instead of deadlocking the scope.
fn with_server<R>(db: &DirectMeshDb, f: impl FnOnce(&str) -> R) -> R {
    with_server_cfg(
        db,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
        f,
    )
}

/// Like [`with_server`] but with explicit knobs (tight write budgets,
/// short stall deadlines) for the adversarial-client tests.
fn with_server_cfg<R>(db: &DirectMeshDb, config: ServerConfig, f: impl FnOnce(&str) -> R) -> R {
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let ctl = server.shutdown_handle();
    std::thread::scope(|s| {
        let handle = s.spawn(|| server.serve(db).expect("serve"));
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&addr)));
        ctl.shutdown();
        handle.join().expect("server thread");
        match out {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        }
    })
}

fn vd_query(db: &DirectMeshDb, roi: Rect) -> VdQuery {
    let e_min = db.e_for_points_fraction(0.4);
    let e_far = db.e_for_points_fraction(0.05).max(e_min);
    VdQuery {
        roi,
        target: PlaneTarget {
            origin: roi.min,
            dir: Vec2::new(0.0, 1.0),
            e_min,
            slope: (e_far - e_min) / roi.height().max(1e-9),
            e_max: e_far,
        },
    }
}

fn assert_same_mesh(label: &str, remote: &MeshResult, front: &dm_mtm::FrontMesh) {
    let (lv, lf) = canonical_mesh(front);
    assert_eq!(remote.vertices, lv, "{label}: vertex sets differ");
    assert_eq!(remote.faces, lf, "{label}: face sets differ");
}

const COLD: QueryOpts = QueryOpts {
    cold: true,
    degraded: false,
    chunked: false,
    scope: QueryScope::World,
};

#[test]
fn remote_vi_vd_and_batch_match_local_bit_for_bit() {
    let db = build_db(33, 9);
    let e = db.e_for_points_fraction(0.3);
    let b = db.bounds;
    let span = Vec2::new(b.width(), b.height());
    let rois = [
        b,
        Rect {
            min: b.min,
            max: Vec2::new(b.min.x + span.x * 0.4, b.min.y + span.y * 0.4),
        },
        Rect {
            min: Vec2::new(b.min.x + span.x * 0.3, b.min.y + span.y * 0.5),
            max: Vec2::new(b.min.x + span.x * 0.9, b.min.y + span.y * 0.95),
        },
    ];

    with_server(&db, |addr| {
        let mut client = Client::connect(addr).expect("connect");

        // --- VI: mesh, fetch count and cold disk accesses all match. ---
        for (i, roi) in rois.iter().enumerate() {
            let remote = client.vi_query(COLD, *roi, e).expect("remote VI");
            assert!(remote.report.is_clean());

            db.cold_start();
            let reads0 = thread_reads();
            let mut counters = FetchCounters::default();
            let (local, report) = db
                .try_vi_query_counted(roi, e, &mut counters)
                .expect("local VI");
            assert!(report.is_clean());
            let local_disk = thread_reads() - reads0;

            assert_same_mesh(&format!("VI roi {i}"), &remote, &local.front);
            assert_eq!(remote.fetched_records, local.fetched_records as u64);
            assert_eq!(
                remote.disk_accesses, local_disk,
                "VI roi {i}: disk accesses"
            );
            assert_eq!(remote.counters, counters, "VI roi {i}: fetch counters");
        }

        // --- VD multi-base: same equality across both policies. ---
        for (i, roi) in rois.iter().enumerate() {
            let q = vd_query(&db, *roi);
            for policy in [BoundaryPolicy::Skip, BoundaryPolicy::FetchOnMiss] {
                let remote = client.vd_query(COLD, q, policy, 8).expect("remote VD");
                db.cold_start();
                let reads0 = thread_reads();
                let mut counters = FetchCounters::default();
                let (local, report) = db
                    .try_vd_multi_base_counted(&q, policy, 8, &mut counters)
                    .expect("local VD");
                assert!(report.is_clean());
                let local_disk = thread_reads() - reads0;

                assert_same_mesh(&format!("VD roi {i} {policy:?}"), &remote, &local.front);
                assert_eq!(remote.fetched_records, local.fetched_records as u64);
                assert_eq!(remote.cubes as usize, local.cubes.len());
                assert_eq!(
                    remote.disk_accesses, local_disk,
                    "VD roi {i}: disk accesses"
                );
            }
        }

        // --- Batch (serial, cold): per-item meshes and the pool-level
        // disk-access total both match a local serial run. ---
        let batch: Vec<(Rect, f64)> = rois.iter().map(|r| (*r, e)).collect();
        let (remote_total, items) = client
            .batch_query(COLD, batch.clone(), 1)
            .expect("remote batch");
        assert_eq!(items.len(), batch.len());

        db.cold_start();
        let reads0 = thread_reads();
        for (i, ((roi, e), item)) in batch.iter().zip(&items).enumerate() {
            let (local, _report) = db.try_vi_query(roi, *e).expect("local batch item");
            assert_same_mesh(&format!("batch item {i}"), item, &local.front);
            assert_eq!(item.fetched_records, local.fetched_records as u64);
        }
        let local_total = thread_reads() - reads0;
        assert_eq!(remote_total, local_total, "batch disk-access total");
    });
}

#[test]
fn remote_walkthrough_matches_local_session_frame_by_frame() {
    let db = build_db(33, 21);
    let policy = BoundaryPolicy::FetchOnMiss;
    let rois = dm_core::navigation::flight_path(&db.bounds, 0.5, 8);
    let e_min = db.e_for_points_fraction(0.4);
    let e_far = db.e_for_points_fraction(0.05).max(e_min);
    let queries: Vec<VdQuery> = rois
        .iter()
        .map(|roi| {
            let mut q = vd_query(&db, *roi);
            q.target.e_min = e_min;
            q.target.e_max = e_far;
            q.target.slope = (e_far - e_min) / roi.height().max(1e-9);
            q
        })
        .collect();

    with_server(&db, |addr| {
        let mut client = Client::connect(addr).expect("connect");
        let session = client.open_session(policy, 8, false).expect("open session");
        let mut local = dm_core::NavigationSession::new(&db, policy).with_max_cubes(8);
        for (i, q) in queries.iter().enumerate() {
            let remote = client
                .frame_query(session, *q, false)
                .expect("remote frame");
            let (stats, report) = local.try_move_to(q).expect("local frame");
            assert!(report.is_clean());
            assert_same_mesh(&format!("frame {i}"), &remote, local.front());
            assert_eq!(
                remote.fetched_records, stats.fetched_records as u64,
                "frame {i}: fetched records"
            );
        }
        client.close_session(session).expect("close session");

        // The session is gone: the next frame is a typed error, and the
        // connection remains usable for other requests.
        let err = client
            .frame_query(session, queries[0], false)
            .expect_err("closed session must not answer");
        assert!(
            matches!(err, WireError::Remote { .. }),
            "expected typed remote error, got {err:?}"
        );
        let (stats, _) = client.stats(vec![]).expect("connection survives");
        assert_eq!(stats.n_records, db.n_records as u64);
    });
}

/// Build a file-backed copy of a small terrain, then reopen it through a
/// deterministic fault injector.
fn faulty_db(name: &str, rate: f64, seed: u64) -> DirectMeshDb {
    let path = std::env::temp_dir().join(format!("dm_loopback_{}_{name}.db", std::process::id()));
    let _ = std::fs::remove_file(&path);
    {
        let hf = generate::fractal_terrain(33, 33, 3);
        let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());
        let pool = Arc::new(BufferPool::new(
            Box::new(FileStore::create(&path).unwrap()),
            POOL_PAGES,
        ));
        let _ = DirectMeshDb::create_in(pool, &pm, &DmBuildOptions::default());
    }
    let injector: Box<dyn PageStore> = Box::new(FaultInjector::new(
        Box::new(FileStore::open(&path).unwrap()),
        FaultConfig::new(seed).with_read_fail_rate(rate),
    ));
    // One retry: enough that most reads eventually land, while double
    // faults still surface as losses / typed errors. The degraded open
    // keeps a faulty catalog read from failing the test setup.
    let pool = Arc::new(BufferPool::new(injector, POOL_PAGES).with_max_retries(1));
    let mut report = IntegrityReport::default();
    DirectMeshDb::open_degraded(pool, &mut report).expect("catalog intact")
}

#[test]
fn fault_injected_server_degrades_instead_of_crashing() {
    let db = faulty_db("degrade", 0.3, 77);
    let e = db.e_for_points_fraction(0.3);
    let roi = db.bounds;

    with_server(&db, |addr| {
        let mut client = Client::connect(addr).expect("connect");
        let mut degraded_ok = 0u64;
        let mut losses = 0u64;
        let mut typed_errors = 0u64;

        // The degradation contract across the wire mirrors the library:
        // lost *heap* pages degrade into loss reports, while an unreadable
        // *index* page is a typed storage error. Either way the server
        // keeps answering — no crash, no dropped connection, no untyped
        // failure.
        for i in 0..24 {
            match client.vi_query(
                QueryOpts {
                    cold: i % 2 == 0,
                    degraded: true,
                    ..QueryOpts::default()
                },
                roi,
                e,
            ) {
                Ok(m) => {
                    degraded_ok += 1;
                    losses += m.report.pages_lost;
                }
                Err(WireError::Remote { .. }) => typed_errors += 1,
                Err(other) => panic!("degraded query died untypedly: {other:?}"),
            }

            // Strict queries on a faulty store either succeed cleanly or
            // fail with a typed error — partial data is never silent.
            match client.vi_query(COLD, roi, e) {
                Ok(m) => assert!(m.report.is_clean(), "strict query returned losses"),
                Err(WireError::Remote { .. }) => typed_errors += 1,
                Err(other) => panic!("strict query died untypedly: {other:?}"),
            }
        }
        assert!(degraded_ok > 0, "no degraded query ever answered");
        assert!(
            losses + typed_errors > 0,
            "fault rate 0.3 over 48 queries had no observable effect"
        );

        // The same connection still answers after all of that.
        let (stats, _) = client.stats(vec![]).expect("connection survives faults");
        assert_eq!(stats.n_records, db.n_records as u64);
    });
}

// ---------------------------------------------------------------------------
// Adversarial clients. A hostile peer — one that never reads, one that
// trickles and stalls, one that sends garbage — must be shed cleanly
// (typed error or disconnect, never a wedged server), while a
// well-behaved client sharing the server keeps getting answers that are
// bit-identical to local execution.
// ---------------------------------------------------------------------------

use dm_net::frame::{read_frame, write_frame, FrameEvent};
use dm_net::proto::{ErrorCode, Request, Response};
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// One clean warm VI query over the wire, compared bit-for-bit against
/// the same query run locally on the shared database object.
fn assert_clean_query_matches(client: &mut Client, db: &DirectMeshDb, roi: Rect, e: f64) {
    let remote = client
        .vi_query(QueryOpts::default(), roi, e)
        .expect("clean client query");
    let (local, report) = db.try_vi_query(&roi, e).expect("local query");
    assert!(report.is_clean());
    assert_same_mesh("clean client under attack", &remote, &local.front);
    assert_eq!(remote.fetched_records, local.fetched_records as u64);
}

#[test]
fn stalled_reader_is_shed_while_clean_client_stays_bit_identical() {
    let db = build_db(33, 5);
    let e_full = db.e_for_points_fraction(1.0);
    let e_mid = db.e_for_points_fraction(0.3);
    let roi = db.bounds;
    let cfg = ServerConfig {
        workers: 2,
        // Tight budget so the non-reading peer is shed quickly.
        write_budget: 64 * 1024,
        ..ServerConfig::default()
    };
    with_server_cfg(&db, cfg, |addr| {
        let evil_done = AtomicBool::new(false);
        std::thread::scope(|s| {
            let evil = s.spawn(|| {
                // Pipeline full-detail queries and never read a byte:
                // responses pile up against the write budget until the
                // server sheds the connection, which turns our next
                // blocked write into an error.
                let mut sock = TcpStream::connect(addr).unwrap();
                let req = Request::ViQuery {
                    opts: QueryOpts::default(),
                    roi,
                    e: e_full,
                };
                let payload = req.encode();
                let mut dropped = false;
                for _ in 0..200_000 {
                    if write_frame(&mut sock, req.kind(), &payload).is_err() {
                        dropped = true;
                        break;
                    }
                }
                evil_done.store(true, Ordering::SeqCst);
                dropped
            });
            // The clean client keeps querying while the attack runs.
            let mut client = Client::connect(addr).expect("clean connect");
            let t0 = Instant::now();
            while !evil_done.load(Ordering::SeqCst) && t0.elapsed() < Duration::from_secs(30) {
                assert_clean_query_matches(&mut client, &db, roi, e_mid);
            }
            assert!(
                evil.join().expect("evil thread"),
                "server never shed the non-reading peer"
            );
            // And still answers bit-identically after the shed.
            assert_clean_query_matches(&mut client, &db, roi, e_mid);
        });
    });
}

#[test]
fn trickle_writer_is_served_but_mid_frame_staller_is_shed() {
    let db = build_db(33, 5);
    let e = db.e_for_points_fraction(0.3);
    let roi = db.bounds;
    let cfg = ServerConfig {
        workers: 2,
        frame_stall_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    };
    with_server_cfg(&db, cfg, |addr| {
        // A 1-byte-at-a-time writer that keeps making progress is a slow
        // peer, not a hostile one: the event loop reassembles its frame
        // without ever blocking a worker on it, and the answer is
        // bit-identical to local execution.
        let req = Request::ViQuery {
            opts: QueryOpts::default(),
            roi,
            e,
        };
        let mut frame_bytes = Vec::new();
        write_frame(&mut frame_bytes, req.kind(), &req.encode()).unwrap();
        let mut trickler = TcpStream::connect(addr).unwrap();
        trickler
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        for byte in &frame_bytes {
            trickler.write_all(std::slice::from_ref(byte)).unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        match read_frame(&mut trickler).expect("trickled query answered") {
            FrameEvent::Frame(f) => {
                let resp = Response::decode(&f).expect("decode trickled response");
                let Response::Mesh(remote) = resp else {
                    panic!("expected mesh for trickled query");
                };
                let (local, _) = db.try_vi_query(&roi, e).expect("local query");
                assert_same_mesh("trickled query", &remote, &local.front);
            }
            other => panic!("expected a response frame, got {other:?}"),
        }
        drop(trickler);

        // A peer that goes silent *mid-frame* owes the server bytes it
        // never sends: the stall deadline sheds it. A clean client on
        // the same server is never disturbed.
        let mut staller = TcpStream::connect(addr).unwrap();
        staller.write_all(&frame_bytes[..7]).unwrap();
        let mut client = Client::connect(addr).expect("clean connect");
        staller.set_nonblocking(true).unwrap();
        let t0 = Instant::now();
        let mut shed = false;
        while t0.elapsed() < Duration::from_secs(10) {
            assert_clean_query_matches(&mut client, &db, roi, e);
            let mut probe = [0u8; 1];
            match std::io::Read::read(&mut staller, &mut probe) {
                Ok(_) => {
                    shed = true; // EOF: the server dropped us
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => {
                    shed = true; // reset
                    break;
                }
            }
        }
        assert!(shed, "server never shed the mid-frame staller");
    });
}

#[test]
fn garbage_and_truncated_frames_get_typed_errors_not_crashes() {
    let db = build_db(33, 5);
    let e = db.e_for_points_fraction(0.3);
    let roi = db.bounds;
    with_server(&db, |addr| {
        // Garbage bytes: the server answers with a *typed* BadRequest
        // error frame before dropping the connection.
        let mut garbage = TcpStream::connect(addr).unwrap();
        garbage
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        garbage
            .write_all(b"these bytes are not a frame of any kind")
            .unwrap();
        match read_frame(&mut garbage).expect("typed error answered") {
            FrameEvent::Frame(f) => match Response::decode(&f).expect("decode error frame") {
                Response::Error { code, .. } => {
                    assert_eq!(code, ErrorCode::BadRequest, "garbage gets BadRequest");
                }
                other => panic!("expected error response, got kind {:#04x}", other.kind()),
            },
            other => panic!("expected a typed error frame, got {other:?}"),
        }
        // ...and then EOF: the connection is closed, not wedged.
        match read_frame(&mut garbage).expect("read after error") {
            FrameEvent::Eof => {}
            other => panic!("expected EOF after typed error, got {other:?}"),
        }

        // Truncated frame: a valid header promising more bytes than ever
        // arrive, then an abrupt close. The server just drops the
        // half-open connection; nothing crashes or leaks.
        let req = Request::ViQuery {
            opts: QueryOpts::default(),
            roi,
            e,
        };
        let mut frame_bytes = Vec::new();
        write_frame(&mut frame_bytes, req.kind(), &req.encode()).unwrap();
        let mut trunc = TcpStream::connect(addr).unwrap();
        trunc
            .write_all(&frame_bytes[..frame_bytes.len() / 2])
            .unwrap();
        drop(trunc);

        // A well-behaved client is still answered bit-identically.
        let mut client = Client::connect(addr).expect("clean connect");
        assert_clean_query_matches(&mut client, &db, roi, e);
    });
}

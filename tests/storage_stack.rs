//! The whole system on a *file-backed* store: identical results and
//! identical disk-access counts to the in-memory store, plus real I/O.

use std::sync::Arc;

use dm_core::{DirectMeshDb, DmBuildOptions};
use dm_geom::Rect;
use dm_mtm::builder::{build_pm, PmBuildConfig};
use dm_storage::{BufferPool, FileStore, MemStore};
use dm_terrain::{generate, TriMesh};

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("dm_it_{}_{name}.db", std::process::id()))
}

#[test]
fn file_backed_database_matches_memory_backed() {
    let hf = generate::fractal_terrain(21, 21, 31);
    let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());

    let mem_pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), 256));
    let mem_db = DirectMeshDb::build(mem_pool, &pm, &DmBuildOptions::default());

    let path = tmp("match");
    let file_pool = Arc::new(BufferPool::new(
        Box::new(FileStore::create(&path).unwrap()),
        256,
    ));
    let file_db = DirectMeshDb::build(file_pool, &pm, &DmBuildOptions::default());

    for frac in [0.01, 0.1, 0.4] {
        let e = mem_db.e_max * frac;
        let roi = Rect::centered_square(mem_db.bounds.center(), mem_db.bounds.width() * 0.5);
        mem_db.cold_start();
        let a = mem_db.vi_query(&roi, e);
        let da_mem = mem_db.disk_accesses();
        file_db.cold_start();
        let b = file_db.vi_query(&roi, e);
        let da_file = file_db.disk_accesses();
        assert_eq!(a.points, b.points, "results differ at {frac}");
        assert_eq!(da_mem, da_file, "access counts differ at {frac}");
        let mut ia: Vec<u32> = a.front.vertex_ids().collect();
        let mut ib: Vec<u32> = b.front.vertex_ids().collect();
        ia.sort();
        ib.sort();
        assert_eq!(ia, ib);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn tiny_buffer_pool_still_answers_correctly() {
    // With an 8-frame pool the working set never fits: eviction and
    // re-reads must not change results, only cost.
    let hf = generate::fractal_terrain(17, 17, 33);
    let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());
    let big = DirectMeshDb::build(
        Arc::new(BufferPool::new(Box::new(MemStore::new()), 4096)),
        &pm,
        &DmBuildOptions::default(),
    );
    let small = DirectMeshDb::build(
        Arc::new(BufferPool::new(Box::new(MemStore::new()), 8)),
        &pm,
        &DmBuildOptions::default(),
    );
    let e = big.e_max * 0.05;
    let a = big.vi_query(&big.bounds, e);
    let b = small.vi_query(&small.bounds, e);
    assert_eq!(a.points, b.points);
    big.cold_start();
    let _ = big.vi_query(&big.bounds, e);
    small.cold_start();
    let _ = small.vi_query(&small.bounds, e);
    assert!(
        small.disk_accesses() >= big.disk_accesses(),
        "a thrashing pool cannot read fewer pages"
    );
}

#[test]
fn database_reopens_from_its_catalog() {
    let hf = generate::fractal_terrain(21, 21, 37);
    let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());
    let path = tmp("catalog");

    // Build, persist, remember reference answers, drop everything.
    let (e, want_points, want_ids) = {
        let pool = Arc::new(BufferPool::new(
            Box::new(FileStore::create(&path).unwrap()),
            256,
        ));
        let db = DirectMeshDb::create_in(pool, &pm, &DmBuildOptions::default());
        let e = db.e_for_points_fraction(0.25);
        let res = db.vi_query(&db.bounds, e);
        let mut ids: Vec<u32> = res.front.vertex_ids().collect();
        ids.sort();
        (e, res.points, ids)
    };

    // Reopen from disk alone: same answers, records intact.
    let pool = Arc::new(BufferPool::new(
        Box::new(FileStore::open(&path).unwrap()),
        256,
    ));
    let db = DirectMeshDb::open(pool).expect("catalog readable");
    assert_eq!(db.n_records, pm.hierarchy.len());
    assert_eq!(db.n_leaves, pm.hierarchy.n_leaves);
    let res = db.vi_query(&db.bounds, e);
    assert_eq!(res.points, want_points);
    let mut ids: Vec<u32> = res.front.vertex_ids().collect();
    ids.sort();
    assert_eq!(ids, want_ids);
    // Point lookups work through the reattached B+-tree.
    for id in [0u32, 7, 100] {
        assert_eq!(db.fetch_by_id(id).unwrap().node.id, id);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn pm_build_persist_then_database_build_matches() {
    // The other half of the persistence story: save the expensive PM
    // construction, reload it, and build an identical database from it.
    use dm_mtm::persist::{load_pm, save_pm};
    let hf = generate::fractal_terrain(17, 17, 41);
    let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());
    let mut buf = Vec::new();
    save_pm(&pm, &mut buf).unwrap();
    let pm2 = load_pm(&buf[..]).unwrap();

    let mk = |p: &dm_mtm::builder::PmBuild| {
        let pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), 1024));
        DirectMeshDb::build(pool, p, &DmBuildOptions::default())
    };
    let a = mk(&pm);
    let b = mk(&pm2);
    let e = a.e_for_points_fraction(0.2);
    let ra = a.vi_query(&a.bounds, e);
    let rb = b.vi_query(&b.bounds, e);
    assert_eq!(ra.points, rb.points);
    a.cold_start();
    b.cold_start();
    let _ = a.vi_query(&a.bounds, e);
    let _ = b.vi_query(&b.bounds, e);
    assert_eq!(a.disk_accesses(), b.disk_accesses(), "identical layouts");
}

#[test]
fn file_store_persists_across_reopen() {
    use dm_storage::{PageStore, PAGE_SIZE};
    let path = tmp("persist");
    {
        let store = FileStore::create(&path).unwrap();
        for i in 0..10u8 {
            let id = store.allocate();
            let mut buf = [0u8; PAGE_SIZE];
            buf[0] = i;
            store.write_page(id, &buf);
        }
        store.sync();
    }
    let store = FileStore::open(&path).unwrap();
    assert_eq!(store.num_pages(), 10);
    for i in 0..10u8 {
        let mut buf = [0u8; PAGE_SIZE];
        store.read_page(i as u32, &mut buf);
        assert_eq!(buf[0], i);
    }
    std::fs::remove_file(&path).ok();
}

//! The whole system on a *file-backed* store: identical results and
//! identical disk-access counts to the in-memory store, plus real I/O —
//! and the same system driven through a fault injector.

use std::sync::Arc;

use dm_core::{DirectMeshDb, DmBuildOptions};
use dm_geom::Rect;
use dm_mtm::builder::{build_pm, PmBuildConfig};
use dm_storage::{BufferPool, FaultConfig, FaultInjector, FileStore, MemStore};
use dm_terrain::{generate, TriMesh};

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("dm_it_{}_{name}.db", std::process::id()))
}

#[test]
fn file_backed_database_matches_memory_backed() {
    let hf = generate::fractal_terrain(21, 21, 31);
    let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());

    let mem_pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), 256));
    let mem_db = DirectMeshDb::build(mem_pool, &pm, &DmBuildOptions::default());

    let path = tmp("match");
    let file_pool = Arc::new(BufferPool::new(
        Box::new(FileStore::create(&path).unwrap()),
        256,
    ));
    let file_db = DirectMeshDb::build(file_pool, &pm, &DmBuildOptions::default());

    for frac in [0.01, 0.1, 0.4] {
        let e = mem_db.e_max * frac;
        let roi = Rect::centered_square(mem_db.bounds.center(), mem_db.bounds.width() * 0.5);
        mem_db.cold_start();
        let a = mem_db.vi_query(&roi, e);
        let da_mem = mem_db.disk_accesses();
        file_db.cold_start();
        let b = file_db.vi_query(&roi, e);
        let da_file = file_db.disk_accesses();
        assert_eq!(a.points, b.points, "results differ at {frac}");
        assert_eq!(da_mem, da_file, "access counts differ at {frac}");
        let mut ia: Vec<u32> = a.front.vertex_ids().collect();
        let mut ib: Vec<u32> = b.front.vertex_ids().collect();
        ia.sort();
        ib.sort();
        assert_eq!(ia, ib);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn tiny_buffer_pool_still_answers_correctly() {
    // With an 8-frame pool the working set never fits: eviction and
    // re-reads must not change results, only cost.
    let hf = generate::fractal_terrain(17, 17, 33);
    let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());
    let big = DirectMeshDb::build(
        Arc::new(BufferPool::new(Box::new(MemStore::new()), 4096)),
        &pm,
        &DmBuildOptions::default(),
    );
    let small = DirectMeshDb::build(
        Arc::new(BufferPool::new(Box::new(MemStore::new()), 8)),
        &pm,
        &DmBuildOptions::default(),
    );
    let e = big.e_max * 0.05;
    let a = big.vi_query(&big.bounds, e);
    let b = small.vi_query(&small.bounds, e);
    assert_eq!(a.points, b.points);
    big.cold_start();
    let _ = big.vi_query(&big.bounds, e);
    small.cold_start();
    let _ = small.vi_query(&small.bounds, e);
    assert!(
        small.disk_accesses() >= big.disk_accesses(),
        "a thrashing pool cannot read fewer pages"
    );
}

#[test]
fn database_reopens_from_its_catalog() {
    let hf = generate::fractal_terrain(21, 21, 37);
    let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());
    let path = tmp("catalog");

    // Build, persist, remember reference answers, drop everything.
    let (e, want_points, want_ids) = {
        let pool = Arc::new(BufferPool::new(
            Box::new(FileStore::create(&path).unwrap()),
            256,
        ));
        let db = DirectMeshDb::create_in(pool, &pm, &DmBuildOptions::default());
        let e = db.e_for_points_fraction(0.25);
        let res = db.vi_query(&db.bounds, e);
        let mut ids: Vec<u32> = res.front.vertex_ids().collect();
        ids.sort();
        (e, res.points, ids)
    };

    // Reopen from disk alone: same answers, records intact.
    let pool = Arc::new(BufferPool::new(
        Box::new(FileStore::open(&path).unwrap()),
        256,
    ));
    let db = DirectMeshDb::open(pool).expect("catalog readable");
    assert_eq!(db.n_records, pm.hierarchy.len());
    assert_eq!(db.n_leaves, pm.hierarchy.n_leaves);
    let res = db.vi_query(&db.bounds, e);
    assert_eq!(res.points, want_points);
    let mut ids: Vec<u32> = res.front.vertex_ids().collect();
    ids.sort();
    assert_eq!(ids, want_ids);
    // Point lookups work through the reattached B+-tree.
    for id in [0u32, 7, 100] {
        assert_eq!(db.fetch_by_id(id).unwrap().node.id, id);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn pm_build_persist_then_database_build_matches() {
    // The other half of the persistence story: save the expensive PM
    // construction, reload it, and build an identical database from it.
    use dm_mtm::persist::{load_pm, save_pm};
    let hf = generate::fractal_terrain(17, 17, 41);
    let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());
    let mut buf = Vec::new();
    save_pm(&pm, &mut buf).unwrap();
    let pm2 = load_pm(&buf[..]).unwrap();

    let mk = |p: &dm_mtm::builder::PmBuild| {
        let pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), 1024));
        DirectMeshDb::build(pool, p, &DmBuildOptions::default())
    };
    let a = mk(&pm);
    let b = mk(&pm2);
    let e = a.e_for_points_fraction(0.2);
    let ra = a.vi_query(&a.bounds, e);
    let rb = b.vi_query(&b.bounds, e);
    assert_eq!(ra.points, rb.points);
    a.cold_start();
    b.cold_start();
    let _ = a.vi_query(&a.bounds, e);
    let _ = b.vi_query(&b.bounds, e);
    assert_eq!(a.disk_accesses(), b.disk_accesses(), "identical layouts");
}

#[test]
fn file_store_persists_across_reopen() {
    use dm_storage::{PageStore, PAGE_SIZE};
    let path = tmp("persist");
    {
        let store = FileStore::create(&path).unwrap();
        for i in 0..10u8 {
            let id = store.allocate().unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            buf[0] = i;
            store.write_page(id, &buf).unwrap();
        }
        store.sync().unwrap();
    }
    let store = FileStore::open(&path).unwrap();
    assert_eq!(store.num_pages(), 10);
    for i in 0..10u8 {
        let mut buf = [0u8; PAGE_SIZE];
        store.read_page(i as u32, &mut buf).unwrap();
        assert_eq!(buf[0], i);
    }
    std::fs::remove_file(&path).ok();
}

/// Build a database through a fault injector with the given transient
/// read-failure rate, next to an identical fault-free reference.
fn faulty_and_clean(
    rate: f64,
    seed: u64,
) -> (DirectMeshDb, Arc<dm_storage::FaultCounters>, DirectMeshDb) {
    let hf = generate::fractal_terrain(21, 21, 43);
    let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());
    let injector = FaultInjector::new(
        Box::new(MemStore::new()),
        FaultConfig::new(seed).with_read_fail_rate(rate),
    );
    let counters = injector.counters();
    let pool = Arc::new(BufferPool::new(Box::new(injector), 256));
    let faulty = DirectMeshDb::build(pool, &pm, &DmBuildOptions::default());
    let clean = DirectMeshDb::build(
        Arc::new(BufferPool::new(Box::new(MemStore::new()), 256)),
        &pm,
        &DmBuildOptions::default(),
    );
    (faulty, counters, clean)
}

#[test]
fn queries_heal_transient_faults_at_one_percent() {
    queries_heal_transient_faults(0.01, 45);
}

#[test]
fn queries_heal_transient_faults_at_five_percent() {
    queries_heal_transient_faults(0.05, 47);
}

/// With the default retry budget, transient read failures at realistic
/// rates never surface: queries return exactly the fault-free answers,
/// and the integrity report stays clean while accounting for every
/// retry the pool had to spend.
fn queries_heal_transient_faults(rate: f64, seed: u64) {
    let (faulty, counters, clean) = faulty_and_clean(rate, seed);
    let mut total_retries = 0u64;
    for frac in [0.05, 0.3] {
        let e = clean.e_max * frac;
        let roi = Rect::centered_square(clean.bounds.center(), clean.bounds.width() * 0.7);
        faulty.cold_start();
        let (res, report) = faulty.try_vi_query(&roi, e).expect("index survives");
        clean.cold_start();
        let want = clean.vi_query(&roi, e);
        assert!(report.is_clean(), "lost data at rate {rate}: {report}");
        assert_eq!(res.points, want.points, "degraded result differs at {frac}");
        assert_eq!(
            faulty.disk_accesses(),
            clean.disk_accesses(),
            "retries must not count as extra logical page fetches"
        );
        total_retries += report.retries;
    }
    // At the higher rate the deterministic stream certainly fired, and
    // every failure it injected was healed by a retry. (At 1% the few
    // hundred uncached reads of this small database may see none.)
    if rate >= 0.05 {
        assert!(
            total_retries > 0,
            "5% fault rate produced no retries at all"
        );
        assert!(counters.transient_read_failures() > 0);
    }
}

#[test]
fn persistent_page_corruption_degrades_instead_of_failing() {
    use dm_storage::PAGE_SIZE;
    let hf = generate::fractal_terrain(21, 21, 49);
    let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());
    let path = tmp("degrade");
    {
        let pool = Arc::new(BufferPool::new(
            Box::new(FileStore::create(&path).unwrap()),
            256,
        ));
        let _db = DirectMeshDb::create_in(pool, &pm, &DmBuildOptions::default());
    }

    // Reopen, learn where the heap lives, and scribble over part of it
    // *behind the pool's back* — persistent corruption no retry can heal.
    let pool = Arc::new(BufferPool::new(
        Box::new(FileStore::open(&path).unwrap()),
        256,
    ));
    let heap_pages = dm_core::catalog::read_catalog(&pool, 0).unwrap().heap_pages;
    let db = DirectMeshDb::open(pool).expect("catalog still intact");
    let e = db.e_for_points_fraction(0.25);
    let (want, clean_report) = db.try_vi_query(&db.bounds, e).unwrap();
    assert!(clean_report.is_clean());

    db.cold_start(); // drop cached copies so reads hit the file again
    let n_corrupt = heap_pages.len() / 2;
    {
        use std::io::{Seek, SeekFrom, Write};
        let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        for &page in heap_pages.iter().take(n_corrupt) {
            f.seek(SeekFrom::Start(page as u64 * PAGE_SIZE as u64 + 99))
                .unwrap();
            f.write_all(b"oops").unwrap();
        }
        f.sync_all().unwrap();
    }

    let (res, report) = db
        .try_vi_query(&db.bounds, e)
        .expect("index pages untouched");
    assert!(!report.is_clean(), "corruption must be reported");
    assert!(report.pages_lost > 0 && report.pages_lost <= n_corrupt as u64);
    assert!(report.points_lost > 0);
    assert!(!report.errors.is_empty() && report.errors[0].contains("checksum"));
    assert!(
        res.points < want.points,
        "losing half the heap must shrink the mesh ({} vs {})",
        res.points,
        want.points
    );
    // The strict path refuses the same query.
    db.cold_start();
    assert!(db
        .try_fetch_box(&dm_geom::Box3::prism(db.bounds, e, e))
        .is_err());

    // An untouched store would have answered exactly; sanity-check that
    // the degraded mesh is still a subset of the clean one.
    let mut got: Vec<u32> = res.front.vertex_ids().collect();
    got.sort_unstable();
    let mut full: Vec<u32> = want.front.vertex_ids().collect();
    full.sort_unstable();
    assert!(got.iter().all(|id| full.binary_search(id).is_ok()));

    // Reopening the corrupted file from scratch: the strict open's heap
    // scan refuses, the degraded open attaches past the bad pages and
    // reports exactly what is missing.
    drop(db);
    let fresh = || {
        Arc::new(BufferPool::new(
            Box::new(FileStore::open(&path).unwrap()),
            256,
        ))
    };
    assert!(DirectMeshDb::open(fresh()).is_err());
    let mut open_report = dm_core::IntegrityReport::default();
    let db = DirectMeshDb::open_degraded(fresh(), &mut open_report).expect("catalog intact");
    assert_eq!(open_report.pages_lost, n_corrupt as u64);
    assert!(open_report.points_lost > 0);
    let (res, _) = db.try_vi_query(&db.bounds, e).unwrap();
    assert!(res.points > 0 && res.points < want.points);
    std::fs::remove_file(&path).ok();
}

//! Satellite robustness test: store files truncated **mid-page** — the
//! classic crash/copy accident. Strict opens must fail with a typed
//! error (never panic, never serve silently wrong data); degraded opens
//! must serve exactly the surviving prefix, for both the v2 (flat) and
//! v3 (compact) record codecs.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dm_core::record::RecordCodec;
use dm_core::{DirectMeshDb, DmBuildOptions, DmRecord, IntegrityReport};
use dm_geom::{Box3, Vec3};
use dm_mtm::builder::{build_pm, PmBuildConfig};
use dm_storage::{BufferPool, FileStore, PAGE_SIZE};
use dm_terrain::{generate, TriMesh};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dm_trunc_{}_{name}.db", std::process::id()))
}

fn everywhere() -> Box3 {
    Box3::new(
        Vec3::new(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY),
        Vec3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY),
    )
}

/// Build a file-backed database; returns its full record set and the
/// total page count of the healthy file.
fn build(path: &Path, codec: RecordCodec) -> (HashMap<u32, DmRecord>, u32) {
    let _ = std::fs::remove_file(path);
    let hf = generate::fractal_terrain(33, 33, 3);
    let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());
    let pool = Arc::new(BufferPool::new(
        Box::new(FileStore::create(path).unwrap()),
        2048,
    ));
    let db = DirectMeshDb::create_in(
        Arc::clone(&pool),
        &pm,
        &DmBuildOptions {
            codec,
            ..DmBuildOptions::default()
        },
    );
    let full: HashMap<u32, DmRecord> = db
        .fetch_box(&everywhere())
        .into_iter()
        .map(|r| (r.node.id, r))
        .collect();
    (full, pool.num_pages())
}

/// Copy `src` to `dst`, keeping `keep` whole pages plus half of the next
/// page — a truncation landing in the middle of a page.
fn truncate_mid_page(src: &Path, dst: &Path, keep: u32) {
    let _ = std::fs::remove_file(dst);
    std::fs::copy(src, dst).unwrap();
    let f = std::fs::OpenOptions::new().write(true).open(dst).unwrap();
    f.set_len(u64::from(keep) * PAGE_SIZE as u64 + PAGE_SIZE as u64 / 2)
        .unwrap();
    f.sync_all().unwrap();
}

#[test]
fn truncated_stores_fail_strict_opens_and_serve_surviving_prefix_degraded() {
    for (codec, name) in [(RecordCodec::Flat, "v2"), (RecordCodec::Compact, "v3")] {
        let src = tmp(&format!("src_{name}"));
        let (full, total) = build(&src, codec);
        assert!(total > 6, "store too small to truncate meaningfully");

        // Cut just before the end (index pages lost, heap intact) and in
        // the middle (heap pages lost too).
        for (tag, keep) in [("tail", total - 1), ("mid", total * 3 / 5)] {
            let cut = tmp(&format!("{tag}_{name}"));
            truncate_mid_page(&src, &cut, keep);

            // The raw store refuses the mid-page length outright.
            assert!(
                FileStore::open(&cut).is_err(),
                "{name}/{tag}: mid-page file length must be rejected"
            );

            // A trimmed open succeeds at the store layer, but the strict
            // database open must fail with a typed error: pages the
            // catalog promises are gone.
            let pool = Arc::new(BufferPool::new(
                Box::new(FileStore::open_trimmed(&cut).unwrap()),
                2048,
            ));
            let strict = DirectMeshDb::open(Arc::clone(&pool));
            assert!(
                strict.is_err(),
                "{name}/{tag}: strict open of a truncated store must fail"
            );

            // The degraded open serves the surviving prefix: every record
            // it returns is bit-identical to the healthy build's record.
            let mut report = IntegrityReport::default();
            let db = DirectMeshDb::open_degraded_at(pool, 0, &mut report)
                .unwrap_or_else(|e| panic!("{name}/{tag}: degraded open failed: {e}"));
            let mut fetch_report = IntegrityReport::default();
            let got = db
                .fetch_box_degraded(&everywhere(), &mut fetch_report)
                .unwrap_or_else(|e| panic!("{name}/{tag}: degraded fetch failed: {e}"));
            assert!(!got.is_empty(), "{name}/{tag}: surviving prefix is empty");
            for r in &got {
                assert_eq!(
                    full.get(&r.node.id),
                    Some(r),
                    "{name}/{tag}: surviving record {} differs from the healthy build",
                    r.node.id
                );
            }

            if keep == total - 1 {
                // Only index pages were lost: the heap survives whole, so
                // the degraded view is complete (served via heap scan).
                assert_eq!(
                    got.len(),
                    full.len(),
                    "{name}/{tag}: heap is intact, no record may be lost"
                );
                assert!(db.rtree_lost(), "{name}/{tag}: index loss must be flagged");
            } else {
                // Heap pages were chopped: a strict subset survives and
                // the loss is accounted, not hidden.
                assert!(
                    got.len() < full.len(),
                    "{name}/{tag}: mid-store cut must lose records"
                );
                assert!(
                    report.pages_lost > 0 || fetch_report.pages_lost > 0,
                    "{name}/{tag}: lost pages must be reported"
                );
            }
            let _ = std::fs::remove_file(&cut);
        }
        let _ = std::fs::remove_file(&src);
    }
}

//! Cross-tile ≡ single-store equivalence: a world split 2×2 out of one
//! database must answer VI and VD queries **bit-identically** to that
//! database — for ROIs that cross the tile seams, at any LOD, under
//! either boundary policy — because the world path fetches with the
//! same boxes and feeds the merged records through the exact
//! single-store assembly code.
//!
//! A second group serves the same contract under adversity: 1% transient
//! read faults on every tile store and a degraded open of one tile must
//! still produce bit-identical answers whenever the query reports clean
//! (retries healed every fault), and valid degraded meshes otherwise.

use std::sync::Arc;

use dm_core::{
    BoundaryPolicy, DirectMeshDb, DmBuildOptions, FetchCounters, IntegrityReport, VdQuery,
};
use dm_geom::{Rect, Vec2};
use dm_mtm::builder::{build_pm, PmBuildConfig};
use dm_storage::{BufferPool, FaultConfig, MemStore};
use dm_terrain::{generate, TriMesh};
use dm_world::{split_world_in_memory, write_split_world, WorldDb, WorldOptions};
use proptest::prelude::*;

fn build_db(side: usize, seed: u64) -> DirectMeshDb {
    let hf = generate::fractal_terrain(side, side, seed);
    let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());
    let pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), 8192));
    DirectMeshDb::build(pool, &pm, &DmBuildOptions::default())
}

/// An ROI guaranteed to straddle both seams of a 2×2 split: corners on
/// opposite sides of the midlines in both axes.
fn seam_roi(b: Rect, fx0: f64, fy0: f64, fx1: f64, fy1: f64) -> Rect {
    let at = |f: f64, lo: f64, span: f64| lo + f * span;
    Rect::from_corners(
        Vec2::new(at(fx0, b.min.x, b.width()), at(fy0, b.min.y, b.height())),
        Vec2::new(at(fx1, b.min.x, b.width()), at(fy1, b.min.y, b.height())),
    )
}

fn vd_query(db_e_max: f64, roi: Rect, eye: Vec2) -> VdQuery {
    VdQuery::from_viewpoint(roi, eye, db_e_max / 40.0, db_e_max)
}

fn mesh_fingerprint(front: &dm_mtm::FrontMesh) -> (Vec<u32>, Vec<[f64; 3]>, Vec<[u32; 3]>) {
    let (mesh, ids) = front.to_trimesh();
    let verts = mesh
        .live_vertices()
        .map(|v| {
            let p = mesh.position(v);
            [p.x, p.y, p.z]
        })
        .collect();
    let tris = mesh.live_triangles().map(|t| mesh.triangle(t)).collect();
    (ids, verts, tris)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// VI across the seam: the tiled world returns the exact node and
    /// face vectors of the single store, at every sampled LOD.
    #[test]
    fn vi_across_seams_is_bit_identical(
        terrain_seed in 0u64..10_000,
        side in 17usize..28,
        fx0 in 0.05..0.45f64,
        fy0 in 0.05..0.45f64,
        fx1 in 0.55..0.95f64,
        fy1 in 0.55..0.95f64,
        frac in 0.05..0.95f64,
    ) {
        let db = build_db(side, terrain_seed);
        let world = split_world_in_memory(
            &db, 2, 2, 4096, &DmBuildOptions::default(), WorldOptions::default(),
        ).unwrap();
        let roi = seam_roi(db.bounds, fx0, fy0, fx1, fy1);
        let e = db.e_for_points_fraction(frac);
        let mut c1 = FetchCounters::default();
        let mut c2 = FetchCounters::default();
        let (single, r1) = db.try_vi_query_flat_counted(&roi, e, &mut c1).unwrap();
        let (tiled, r2) = world.try_vi_query_flat_counted(&roi, e, &mut c2).unwrap();
        prop_assert!(r1.is_clean() && r2.is_clean());
        prop_assert_eq!(&single.nodes, &tiled.nodes, "vertex sets differ across the seam");
        prop_assert_eq!(&single.faces, &tiled.faces, "face sets differ across the seam");
        prop_assert_eq!(single.fetched_records, tiled.fetched_records);
    }

    /// VD across the seam: with the world's own strip plan, both paths
    /// produce the same front — identical vertex ids, bit-identical
    /// positions, identical triangles — under either boundary policy.
    #[test]
    fn vd_across_seams_is_bit_identical(
        terrain_seed in 0u64..10_000,
        side in 17usize..28,
        fx0 in 0.05..0.45f64,
        fy0 in 0.05..0.45f64,
        fx1 in 0.55..0.95f64,
        fy1 in 0.55..0.95f64,
        eye_fx in -0.2..1.2f64,
        eye_fy in -0.2..1.2f64,
        fetch_on_miss in any::<bool>(),
        max_cubes in 4usize..16,
    ) {
        let db = build_db(side, terrain_seed);
        let world = split_world_in_memory(
            &db, 2, 2, 4096, &DmBuildOptions::default(), WorldOptions::default(),
        ).unwrap();
        let roi = seam_roi(db.bounds, fx0, fy0, fx1, fy1);
        let eye = Vec2::new(
            db.bounds.min.x + eye_fx * db.bounds.width(),
            db.bounds.min.y + eye_fy * db.bounds.height(),
        );
        let q = vd_query(db.e_max, roi, eye);
        let policy = if fetch_on_miss {
            BoundaryPolicy::FetchOnMiss
        } else {
            BoundaryPolicy::Skip
        };
        // One strip plan for both sides: the planner sees the same ROI
        // and viewpoint either way, and a shared plan makes the record
        // unions comparable strip by strip.
        let strips = world.plan_multi_base(&q, max_cubes).unwrap();
        let mut c1 = FetchCounters::default();
        let mut c2 = FetchCounters::default();
        let (single, r1) = db
            .try_vd_multi_base_with_strips_counted(&q, policy, &strips, &mut c1)
            .unwrap();
        let (tiled, r2) = world
            .try_vd_with_strips_counted(&q, policy, &strips, &mut c2)
            .unwrap();
        prop_assert!(r1.is_clean() && r2.is_clean());
        prop_assert_eq!(single.fetched_records, tiled.fetched_records);
        let (ids1, verts1, tris1) = mesh_fingerprint(&single.front);
        let (ids2, verts2, tris2) = mesh_fingerprint(&tiled.front);
        prop_assert_eq!(ids1, ids2, "vertex ids differ under {:?}", policy);
        // f64 equality here is deliberate: positions must match to the
        // last bit, not within a tolerance.
        prop_assert_eq!(verts1, verts2, "positions differ under {:?}", policy);
        prop_assert_eq!(tris1, tris2, "triangles differ under {:?}", policy);
    }

    /// The same seam queries with every tile store behind a 1% transient
    /// fault injector and the world opened degraded: a run whose report
    /// is clean (retries healed every fault) must still be bit-identical
    /// to the pristine single store; a degraded run must report its
    /// losses and still assemble a valid mesh.
    #[test]
    fn faulted_degraded_world_heals_to_bit_identical(
        terrain_seed in 0u64..1_000,
        fault_seed in 0u64..1_000,
        fx0 in 0.1..0.4f64,
        fy0 in 0.1..0.4f64,
        fx1 in 0.6..0.9f64,
        fy1 in 0.6..0.9f64,
        frac in 0.1..0.6f64,
    ) {
        let db = build_db(17, terrain_seed);
        let dir = std::env::temp_dir().join(format!(
            "dm_world_eq_{}_{terrain_seed}_{fault_seed}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = write_split_world(&db, 2, 2, &dir, &DmBuildOptions::default()).unwrap();
        let world = WorldDb::open(
            &manifest,
            WorldOptions {
                degraded: true,
                fault: Some(FaultConfig::new(fault_seed).with_read_fail_rate(0.01)),
                ..WorldOptions::default()
            },
        )
        .unwrap();
        let roi = seam_roi(db.bounds, fx0, fy0, fx1, fy1);
        let e = db.e_for_points_fraction(frac);
        let mut c = FetchCounters::default();
        match world.try_vi_query_flat_counted(&roi, e, &mut c) {
            Ok((tiled, report)) if report.is_clean() => {
                let mut c1 = FetchCounters::default();
                let (single, r1) = db.try_vi_query_flat_counted(&roi, e, &mut c1).unwrap();
                prop_assert!(r1.is_clean());
                prop_assert_eq!(&single.nodes, &tiled.nodes);
                prop_assert_eq!(&single.faces, &tiled.faces);
            }
            Ok((tiled, report)) => {
                // Degraded: losses are reported, never silent, and the
                // surviving records still form a coherent answer.
                prop_assert!(report.pages_lost > 0 || !report.errors.is_empty());
                prop_assert!(!tiled.nodes.is_empty());
            }
            // An index-page read that exhausted its retries aborts the
            // query with a typed error; nothing to compare.
            Err(_) => {}
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Degraded open of one wounded tile: scribble over part of one tile's
/// heap, open the world degraded, and check the world (a) answers with a
/// loss report rather than failing, (b) still answers queries confined
/// to healthy tiles bit-identically to the pristine store.
#[test]
fn degraded_open_of_one_tile_quarantines_the_damage() {
    let db = build_db(25, 77);
    let dir = std::env::temp_dir().join(format!("dm_world_wound_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let manifest = write_split_world(&db, 2, 2, &dir, &DmBuildOptions::default()).unwrap();

    // Wound tile 0: scribble over a third of its heap pages. Page
    // checksums turn the scribble into deterministic read losses.
    let tile0 = dir.join("tile_0000.dm");
    let report = {
        let (pool, catalog) = dm_world::open_region_store(&tile0, 1024, None).unwrap();
        let heap_pages = dm_core::catalog::read_catalog(&pool, catalog)
            .unwrap()
            .heap_pages;
        drop(pool);
        let n_corrupt = (heap_pages.len() / 3).max(1);
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = std::fs::OpenOptions::new()
                .write(true)
                .open(&tile0)
                .unwrap();
            for &page in heap_pages.iter().take(n_corrupt) {
                f.seek(SeekFrom::Start(
                    page as u64 * dm_storage::PAGE_SIZE as u64 + 77,
                ))
                .unwrap();
                f.write_all(b"scribble").unwrap();
            }
            f.sync_all().unwrap();
        }
        let mut report = IntegrityReport::default();
        let (pool, catalog) = dm_world::open_region_store(&tile0, 1024, None).unwrap();
        // The wounded tile opens degraded on its own — the world-level
        // degraded open goes through exactly this path per region.
        DirectMeshDb::open_degraded_at(pool, catalog, &mut report).unwrap();
        report
    };
    assert!(!report.is_clean(), "corruption must be visible at open");

    let world = WorldDb::open(
        &manifest,
        WorldOptions {
            degraded: true,
            ..WorldOptions::default()
        },
    )
    .unwrap();

    // A world-spanning query answers (degraded, never failing) and
    // reports the wounded tile's losses rather than silently thinning
    // the mesh.
    let e = db.e_for_points_fraction(0.3);
    let mut c = FetchCounters::default();
    let (whole, whole_report) = world
        .try_vi_query_flat_counted(&db.bounds, e, &mut c)
        .expect("degraded world answers world-spanning queries");
    assert!(!whole.nodes.is_empty());
    assert!(
        !whole_report.is_clean(),
        "a third of tile 0's heap is gone; the world query must say so"
    );

    // Tile 3 (far corner from tile 0) is healthy: a query confined to
    // its interior must be bit-identical to the pristine single store.
    let b = db.bounds;
    let healthy = Rect::from_corners(
        Vec2::new(b.min.x + b.width() * 0.6, b.min.y + b.height() * 0.6),
        Vec2::new(b.min.x + b.width() * 0.95, b.min.y + b.height() * 0.95),
    );
    let mut c1 = FetchCounters::default();
    let mut c2 = FetchCounters::default();
    let (single, r1) = db.try_vi_query_flat_counted(&healthy, e, &mut c1).unwrap();
    let (tiled, r2) = world
        .try_vi_query_flat_counted(&healthy, e, &mut c2)
        .unwrap();
    assert!(r1.is_clean() && r2.is_clean());
    assert_eq!(single.nodes, tiled.nodes);
    assert_eq!(single.faces, tiled.faces);

    std::fs::remove_dir_all(&dir).ok();
}

//! World-server loopback tests: a `dm-server` serving a [`WorldDb`]
//! over TCP must answer exactly like the library — cross-tile VI/VD
//! queries bit-identical to local world execution, region-scoped
//! queries equal to their scoped local twins, per-region stats faithful
//! over the wire — and must release every session's region pins on
//! CloseSession *and* on abrupt disconnect, so LRU eviction is never
//! wedged by a dead client.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dm_core::{BoundaryPolicy, DirectMeshDb, DmBuildOptions, FetchCounters, VdQuery};
use dm_geom::{Rect, Vec2};
use dm_mtm::builder::{build_pm, PmBuildConfig};
use dm_net::{
    canonical_flat, canonical_mesh, Client, ErrorCode, MeshResult, QueryOpts, QueryScope, WireError,
};
use dm_server::{Server, ServerConfig};
use dm_storage::{BufferPool, MemStore};
use dm_terrain::{generate, TriMesh};
use dm_world::{write_split_world, WorldDb, WorldOptions, WorldSession};

fn build_db(side: usize, seed: u64) -> DirectMeshDb {
    let hf = generate::fractal_terrain(side, side, seed);
    let pm = build_pm(TriMesh::from_heightfield(&hf), &PmBuildConfig::default());
    let pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), 8192));
    DirectMeshDb::build(pool, &pm, &DmBuildOptions::default())
}

/// Split `db` 2×2 into file-backed tiles under a fresh temp dir and open
/// the world over them. The caller removes `dir` when done.
fn split_world(db: &DirectMeshDb, name: &str, opts: WorldOptions) -> (WorldDb, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("dm_world_loop_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let manifest = write_split_world(db, 2, 2, &dir, &DmBuildOptions::default()).unwrap();
    let world = WorldDb::open(&manifest, opts).unwrap();
    (world, dir)
}

/// Serve `world` on a loopback socket for the duration of `f`; shutdown
/// is signalled even when `f` panics so a failing assertion aborts the
/// test instead of deadlocking the scope.
fn with_world_server<R>(world: &WorldDb, f: impl FnOnce(&str) -> R) -> R {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let ctl = server.shutdown_handle();
    std::thread::scope(|s| {
        let handle = s.spawn(|| server.serve_world(world).expect("serve world"));
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&addr)));
        ctl.shutdown();
        handle.join().expect("server thread");
        match out {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        }
    })
}

fn vd_query(db: &DirectMeshDb, roi: Rect) -> VdQuery {
    VdQuery::from_viewpoint(roi, roi.center(), db.e_max / 40.0, db.e_max)
}

fn scope_opts(scope: QueryScope) -> QueryOpts {
    QueryOpts {
        scope,
        ..QueryOpts::default()
    }
}

fn assert_mesh_eq(
    label: &str,
    remote: &MeshResult,
    vertices: &[dm_net::WireVertex],
    faces: &[[u32; 3]],
) {
    assert_eq!(remote.vertices, vertices, "{label}: vertex sets differ");
    assert_eq!(remote.faces, faces, "{label}: face sets differ");
}

#[test]
fn remote_world_queries_match_local_bit_for_bit() {
    let db = build_db(33, 13);
    let (world, dir) = split_world(&db, "bitident", WorldOptions::default());
    let b = db.bounds;
    // Three ROIs: the whole world, one crossing both seams, one inside a
    // single tile.
    let rois = [
        b,
        Rect::from_corners(
            Vec2::new(b.min.x + b.width() * 0.25, b.min.y + b.height() * 0.3),
            Vec2::new(b.min.x + b.width() * 0.8, b.min.y + b.height() * 0.85),
        ),
        Rect::from_corners(
            Vec2::new(b.min.x + b.width() * 0.05, b.min.y + b.height() * 0.05),
            Vec2::new(b.min.x + b.width() * 0.4, b.min.y + b.height() * 0.4),
        ),
    ];
    let e = db.e_for_points_fraction(0.3);

    with_world_server(&world, |addr| {
        let mut client = Client::connect(addr).expect("connect");

        // --- Cross-tile VI, world scope. ---
        for (i, roi) in rois.iter().enumerate() {
            let remote = client
                .vi_query(QueryOpts::default(), *roi, e)
                .expect("remote world VI");
            assert!(remote.report.is_clean());
            let mut ctr = FetchCounters::default();
            let (local, report) = world
                .try_vi_query_flat_counted(roi, e, &mut ctr)
                .expect("local world VI");
            assert!(report.is_clean());
            let (lv, lf) = canonical_flat(&local.nodes, &local.faces);
            assert_mesh_eq(&format!("world VI roi {i}"), &remote, &lv, &lf);
            assert_eq!(remote.fetched_records, local.fetched_records as u64);
        }

        // --- Cross-tile VD, both policies. ---
        for (i, roi) in rois.iter().enumerate() {
            let q = vd_query(&db, *roi);
            for policy in [BoundaryPolicy::Skip, BoundaryPolicy::FetchOnMiss] {
                let remote = client
                    .vd_query(QueryOpts::default(), q, policy, 8)
                    .expect("remote world VD");
                let mut ctr = FetchCounters::default();
                let (local, report) = world
                    .try_vd_query_counted(&q, policy, 8, &mut ctr)
                    .expect("local world VD");
                assert!(report.is_clean());
                let (lv, lf) = canonical_mesh(&local.front);
                assert_mesh_eq(&format!("world VD roi {i} {policy:?}"), &remote, &lv, &lf);
                assert_eq!(remote.fetched_records, local.fetched_records as u64);
                assert_eq!(remote.cubes as usize, local.cubes.len());
            }
        }

        // --- Region scope: each region answers exactly its scoped local
        // twin, and an unknown region id is a typed BadRequest. ---
        let seam = rois[1];
        for idx in 0..world.n_regions() {
            let id = world.region_meta(idx).id;
            let remote = client
                .vi_query(scope_opts(QueryScope::Region(id)), seam, e)
                .expect("remote scoped VI");
            let mut ctr = FetchCounters::default();
            let (local, _) = world
                .try_vi_query_flat_scoped(&seam, e, Some(idx), &mut ctr)
                .expect("local scoped VI");
            let (lv, lf) = canonical_flat(&local.nodes, &local.faces);
            assert_mesh_eq(&format!("region {id} VI"), &remote, &lv, &lf);
        }
        match client.vi_query(scope_opts(QueryScope::Region(999)), seam, e) {
            Err(WireError::Remote { code, .. }) => {
                assert_eq!(code, ErrorCode::BadRequest.code(), "unknown region id");
            }
            other => panic!("unknown region id must be BadRequest, got {other:?}"),
        }

        // --- Per-region stats over the wire mirror the library's. ---
        let wire = client.world_stats().expect("world stats");
        let local = world.region_stats();
        assert_eq!(wire.len(), local.len());
        for (w, l) in wire.iter().zip(&local) {
            assert_eq!(w.id, l.id);
            assert_eq!(w.opens, l.opens);
            assert_eq!(w.evictions, l.evictions);
            assert_eq!(w.hits, l.hits);
            assert_eq!(w.queries, l.queries);
            assert_eq!(w.resident_pages, l.resident_pages);
            assert_eq!(w.open, l.open);
        }
        assert!(wire.iter().any(|r| r.opens > 0), "queries opened regions");
    });
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn world_sessions_match_local_and_release_pins_on_close() {
    let db = build_db(33, 29);
    let (world, dir) = split_world(&db, "sessions", WorldOptions::default());
    let rois = dm_core::navigation::flight_path(&db.bounds, 0.5, 6);
    let policy = BoundaryPolicy::FetchOnMiss;

    with_world_server(&world, |addr| {
        let mut client = Client::connect(addr).expect("connect");
        let session = client.open_session(policy, 8, false).expect("open session");
        let mut local = WorldSession::new(policy, 8);
        for (i, roi) in rois.iter().enumerate() {
            let q = vd_query(&db, *roi);
            let remote = client.frame_query(session, q, false).expect("remote frame");
            let mut ctr = FetchCounters::default();
            let (res, report) = local.frame(&world, &q, &mut ctr).expect("local frame");
            assert!(report.is_clean());
            let (lv, lf) = canonical_mesh(&res.front);
            assert_mesh_eq(&format!("world frame {i}"), &remote, &lv, &lf);
            assert_eq!(remote.fetched_records, res.fetched_records as u64);
        }
        // The flight path crosses tiles, so the server session holds
        // pins: our local twin pinned the same regions, hence counts are
        // doubled on the regions both touched.
        assert!(!local.regions().is_empty(), "path never touched a region");
        for &idx in local.regions() {
            assert!(
                world.region_pins(idx) >= 2,
                "server session must pin region {idx} alongside the local twin"
            );
        }
        local.close(&world);

        // CloseSession releases the server session's pins.
        client.close_session(session).expect("close session");
        for idx in 0..world.n_regions() {
            assert_eq!(
                world.region_pins(idx),
                0,
                "region {idx} still pinned after CloseSession"
            );
        }
    });
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn abrupt_disconnect_releases_pins_and_eviction_proceeds() {
    let db = build_db(33, 41);
    let (world, dir) = split_world(
        &db,
        "teardown",
        WorldOptions {
            max_open: 1,
            ..WorldOptions::default()
        },
    );
    // An ROI strictly inside region 0's footprint: the session pins
    // exactly that region.
    let wb = world.region_meta(0).world_bounds();
    let roi = Rect::from_corners(
        Vec2::new(wb.min.x + wb.width() * 0.2, wb.min.y + wb.height() * 0.2),
        Vec2::new(wb.min.x + wb.width() * 0.8, wb.min.y + wb.height() * 0.8),
    );

    with_world_server(&world, |addr| {
        {
            let mut client = Client::connect(addr).expect("connect");
            let session = client
                .open_session(BoundaryPolicy::Skip, 8, false)
                .expect("open session");
            let q = vd_query(&db, roi);
            client.frame_query(session, q, false).expect("frame");
            assert!(
                world.region_pins(0) > 0,
                "an active session must pin the region it reads"
            );
            // No CloseSession: the connection dies with the session open.
        }
        // The reactor notices the dead peer and releases the session's
        // pins; poll rather than sleep — teardown is asynchronous.
        let t0 = Instant::now();
        while world.region_pins(0) > 0 {
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "pins never released after abrupt disconnect"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        // With the pin gone, LRU eviction proceeds: opening another
        // region under max_open=1 evicts region 0 instead of wedging.
        let evictions_before: u64 = world.region_stats().iter().map(|r| r.evictions).sum();
        world.region(1).expect("open another region");
        let stats = world.region_stats();
        assert!(
            !stats[0].open,
            "region 0 must be evicted once its dead session's pin is gone"
        );
        let evictions_after: u64 = stats.iter().map(|r| r.evictions).sum();
        assert!(evictions_after > evictions_before);
        assert_eq!(world.open_count(), 1);
    });
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn single_terrain_server_rejects_region_scope_and_world_stats() {
    let db = build_db(25, 3);
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let ctl = server.shutdown_handle();
    std::thread::scope(|s| {
        let handle = s.spawn(|| server.serve(&db).expect("serve"));
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut client = Client::connect(&addr).expect("connect");
            let e = db.e_for_points_fraction(0.3);
            match client.vi_query(scope_opts(QueryScope::Region(0)), db.bounds, e) {
                Err(WireError::Remote { code, .. }) => {
                    assert_eq!(code, ErrorCode::BadRequest.code());
                }
                other => panic!("region scope on single server must fail, got {other:?}"),
            }
            match client.world_stats() {
                Err(WireError::Remote { code, .. }) => {
                    assert_eq!(code, ErrorCode::BadRequest.code());
                }
                other => panic!("world stats on single server must fail, got {other:?}"),
            }
            // The connection survives both rejections, and an unscoped
            // query still answers bit-identically.
            let remote = client
                .vi_query(QueryOpts::default(), db.bounds, e)
                .expect("unscoped query after rejections");
            let (local, _) = db.try_vi_query(&db.bounds, e).expect("local");
            let (lv, lf) = canonical_mesh(&local.front);
            assert_mesh_eq("single server after rejections", &remote, &lv, &lf);
        }));
        ctl.shutdown();
        handle.join().expect("server thread");
        if let Err(p) = out {
            std::panic::resume_unwind(p);
        }
    });
}

//! Offline shim for `criterion`: a minimal bench runner compatible with
//! the `criterion_group!`/`criterion_main!` harness this workspace uses.
//! The build container has no access to crates.io, so the workspace
//! vendors the few external crates it needs (see `vendor/README.md`).
//!
//! Statistics are deliberately simple — per-iteration mean over
//! `sample_size` timed samples after a short warm-up — because the
//! paper-fidelity benches in this repo report *logical page accesses*,
//! not wall-clock; these micro-benches are a sanity check, not a lab.

use std::time::{Duration, Instant};

/// Bench configuration and registry (subset of upstream `Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            iters_per_sample: 0,
        };
        // Warm-up / calibration pass sizes the per-sample iteration count
        // so each sample runs for roughly 10ms.
        f(&mut b);
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        report(id, &b.samples, b.iters_per_sample);
        self
    }
}

/// Timing harness handed to each bench closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.iters_per_sample == 0 {
            // Calibration: find an iteration count taking ~10ms.
            let mut iters = 1u64;
            loop {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(routine());
                }
                let elapsed = start.elapsed();
                if elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
                    self.iters_per_sample = iters;
                    return;
                }
                iters *= 2;
            }
        }
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

fn report(id: &str, samples: &[Duration], iters: u64) {
    if samples.is_empty() || iters == 0 {
        println!("{id:<40} (no samples)");
        return;
    }
    let per_iter: Vec<f64> = samples
        .iter()
        .map(|d| d.as_nanos() as f64 / iters as f64)
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{id:<40} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Re-export for benches that use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Both upstream forms: plain `criterion_group!(name, t1, t2)` and the
/// named-field form with an explicit `config`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(2);
        let mut ran = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
    }
}

//! Offline shim for `fxhash`: the Firefox/rustc "Fx" multiply-xor hash.
//! The build container has no access to crates.io, so the workspace
//! vendors the few external crates it needs as minimal local
//! implementations (see `vendor/README.md`).
//!
//! The algorithm is the classic per-word mix used by rustc's `FxHasher`:
//! `state = (state.rotate_left(5) ^ word) * K` with a fixed odd constant.
//! It is *not* DoS-resistant — exactly like upstream — which is the
//! point: the hot maps in this workspace are keyed by dense internal
//! `u32` vertex ids, where SipHash's per-lookup setup cost dominates and
//! adversarial keys cannot occur.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `pi.frac() * 2^64`, the multiplier upstream uses for 64-bit state.
const K: u64 = 0x517c_c1b7_2722_0a95;

/// A [`HashMap`] using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A [`HashSet`] using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Zero-cost `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Fast, non-cryptographic hasher for small fixed-width keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (head, rest) = bytes.split_at(8);
            self.add_word(u64::from_le_bytes(head.try_into().unwrap()));
            bytes = rest;
        }
        if !bytes.is_empty() {
            let mut tail = [0u8; 8];
            tail[..bytes.len()].copy_from_slice(bytes);
            self.add_word(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_word(n as u64);
        self.add_word((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_key_sensitive() {
        assert_eq!(hash_of(42u32), hash_of(42u32));
        assert_ne!(hash_of(42u32), hash_of(43u32));
        assert_ne!(hash_of((1u32, 2u32)), hash_of((2u32, 1u32)));
    }

    #[test]
    fn dense_u32_keys_spread() {
        // The only real requirement: consecutive ids must not collide or
        // cluster into a few buckets.
        let mut seen = HashSet::new();
        for id in 0u32..10_000 {
            seen.insert(hash_of(id) % 1024);
        }
        assert!(
            seen.len() == 1024,
            "only {} of 1024 buckets hit",
            seen.len()
        );
    }

    #[test]
    fn byte_slices_hash_by_content() {
        assert_eq!(hash_of([1u8, 2, 3].as_slice()), hash_of(vec![1u8, 2, 3]));
        assert_ne!(
            hash_of([1u8, 2, 3].as_slice()),
            hash_of([1u8, 2, 3, 0].as_slice())
        );
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let s: FxHashSet<u32> = (0..100).collect();
        assert_eq!(s.len(), 100);
        assert!(s.contains(&99));
    }
}

//! Offline shim for `parking_lot`: the subset of the API this workspace
//! uses (`Mutex`, `RwLock` with infallible, poison-free guards), backed by
//! `std::sync`. The build container has no access to crates.io, so the
//! workspace vendors the few external crates it needs as minimal local
//! implementations (see `vendor/README.md`).
//!
//! Semantics match parking_lot where it matters here: `lock()` returns the
//! guard directly (no `Result`), and a panic while holding a lock does not
//! poison it for later users.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

/// A mutual-exclusion lock with parking_lot's infallible `lock()`.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poison (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's infallible guards.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

pub type RwLockReadGuard<'a, T> = StdRwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = StdRwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutex_is_not_poisoned_by_panics() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}

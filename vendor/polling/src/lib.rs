//! Offline shim for `polling`: the minimal readiness-notification surface
//! the `dm-server` event loop needs, with no external dependencies (the
//! build container has no crates.io access and no `libc` crate — see
//! `vendor/README.md`).
//!
//! Two backends, chosen at compile time:
//!
//! * **linux / x86_64** — real `epoll`, driven through raw syscalls
//!   (`std::arch::asm!`); level-triggered, one `epoll_wait` per
//!   [`Poller::wait`]. This is the backend the benches measure.
//! * **other unix** — a bounded sleep-poll: `wait` parks on a condvar
//!   for at most a couple of milliseconds and then reports *every*
//!   registered key as both readable and writable. With non-blocking
//!   sockets this is semantically sound (spurious readiness is allowed
//!   by the level-triggered contract; callers already handle
//!   `WouldBlock`), just less efficient.
//!
//! Non-unix targets are not supported by the shim (no way to name a
//! socket without `AsRawFd`); restoring the real crate lifts that.
//!
//! [`Poller::notify`] is the cross-thread waker: worker threads call it
//! when they enqueue bytes for the reactor to write, so readiness wakes
//! don't wait out the poll tick.

#![cfg(unix)]

use std::collections::HashMap;
use std::io;
use std::os::unix::io::RawFd;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// What a registration wants to hear about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event: the registration key plus what is ready.
/// Errors and hangups surface as readable+writable so the owner's next
/// read/write observes the failure; there is no separate error bit.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub key: usize,
    pub readable: bool,
    pub writable: bool,
}

/// Key reserved for the internal waker; never reported to callers.
const WAKE_KEY: usize = usize::MAX;

pub struct Poller {
    backend: Backend,
    /// Waker pipe (both backends keep one so `notify` also interrupts a
    /// blocked `epoll_wait`, not just the fallback's condvar sleep).
    wake_rx: std::os::unix::net::UnixStream,
    wake_tx: std::os::unix::net::UnixStream,
}

enum Backend {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    Epoll(epoll::Epoll),
    // On epoll targets this variant is compiled but never built (the
    // backend choice is a compile-time cfg in `new_backend`).
    #[cfg_attr(all(target_os = "linux", target_arch = "x86_64"), allow(dead_code))]
    SleepPoll(SleepPoll),
}

/// Fallback state: registrations plus a condvar `notify` can poke.
#[derive(Default)]
struct SleepPoll {
    regs: Mutex<HashMap<RawFd, (usize, Interest)>>,
    gate: Mutex<bool>,
    cv: Condvar,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        let (wake_rx, wake_tx) = std::os::unix::net::UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        let backend = Self::new_backend()?;
        let poller = Poller {
            backend,
            wake_rx,
            wake_tx,
        };
        // The waker's read end lives in the poll set permanently.
        use std::os::unix::io::AsRawFd;
        poller.register(poller.wake_rx.as_raw_fd(), WAKE_KEY, Interest::READ)?;
        Ok(poller)
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    fn new_backend() -> io::Result<Backend> {
        Ok(Backend::Epoll(epoll::Epoll::new()?))
    }

    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    fn new_backend() -> io::Result<Backend> {
        Ok(Backend::SleepPoll(SleepPoll::default()))
    }

    /// Register `fd` under `key`. The fd should be non-blocking; the
    /// poller never reads or writes it, only watches readiness.
    pub fn add(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        assert_ne!(key, WAKE_KEY, "key usize::MAX is reserved");
        self.register(fd, key, interest)
    }

    fn register(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        match &self.backend {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Backend::Epoll(ep) => ep.ctl(epoll::CTL_ADD, fd, Some((key, interest))),
            Backend::SleepPoll(sp) => {
                sp.regs.lock().unwrap().insert(fd, (key, interest));
                Ok(())
            }
        }
    }

    /// Change the interest set of an existing registration.
    pub fn modify(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        assert_ne!(key, WAKE_KEY, "key usize::MAX is reserved");
        match &self.backend {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Backend::Epoll(ep) => ep.ctl(epoll::CTL_MOD, fd, Some((key, interest))),
            Backend::SleepPoll(sp) => {
                sp.regs.lock().unwrap().insert(fd, (key, interest));
                Ok(())
            }
        }
    }

    /// Remove a registration. Must be called before closing the fd.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        match &self.backend {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Backend::Epoll(ep) => ep.ctl(epoll::CTL_DEL, fd, None),
            Backend::SleepPoll(sp) => {
                sp.regs.lock().unwrap().remove(&fd);
                Ok(())
            }
        }
    }

    /// Wait for readiness, appending events to `out`. Returns the number
    /// appended; 0 means the timeout elapsed (or a spurious wake).
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let before = out.len();
        match &self.backend {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Backend::Epoll(ep) => {
                let woken = ep.wait(out, timeout)?;
                if woken {
                    self.drain_waker();
                }
            }
            Backend::SleepPoll(sp) => {
                {
                    let sleep = timeout
                        .unwrap_or(Duration::from_millis(2))
                        .min(Duration::from_millis(2));
                    let mut notified = sp.gate.lock().unwrap();
                    if !*notified {
                        let (guard, _) = sp.cv.wait_timeout(notified, sleep).unwrap();
                        notified = guard;
                    }
                    *notified = false;
                }
                self.drain_waker();
                // Bounded-staleness readiness: report everything as ready
                // and let the non-blocking syscalls sort truth from noise.
                for (_, &(key, interest)) in sp.regs.lock().unwrap().iter() {
                    out.push(Event {
                        key,
                        readable: interest.readable,
                        writable: interest.writable,
                    });
                }
            }
        }
        Ok(out.len() - before)
    }

    /// Wake a concurrent [`Poller::wait`] from another thread. Coalesces:
    /// any number of notifies before the next wait produce one wake.
    pub fn notify(&self) -> io::Result<()> {
        if let Backend::SleepPoll(sp) = &self.backend {
            let mut notified = sp.gate.lock().unwrap();
            *notified = true;
            sp.cv.notify_one();
            return Ok(());
        }
        use std::io::Write;
        match (&self.wake_tx).write(&[1u8]) {
            Ok(_) => Ok(()),
            // Pipe full: a wake is already pending, which is all we need.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn drain_waker(&self) {
        use std::io::Read;
        let mut sink = [0u8; 64];
        while let Ok(n) = (&self.wake_rx).read(&mut sink) {
            if n < sink.len() {
                break;
            }
        }
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod epoll {
    //! Raw-syscall epoll. Numbers and layouts are the x86_64 Linux ABI,
    //! which is stable by kernel policy.

    use super::{Event, Interest, WAKE_KEY};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const SYS_CLOSE: usize = 3;
    const SYS_EPOLL_WAIT: usize = 232;
    const SYS_EPOLL_CTL: usize = 233;
    const SYS_EPOLL_CREATE1: usize = 291;

    pub const CTL_ADD: i32 = 1;
    pub const CTL_DEL: i32 = 2;
    pub const CTL_MOD: i32 = 3;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CLOEXEC: usize = 0x8_0000;

    /// `struct epoll_event` is packed on x86_64 (12 bytes).
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    /// One syscall, returning the raw kernel result (negative errno on
    /// failure).
    unsafe fn syscall4(n: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    pub struct Epoll {
        fd: RawFd,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            let fd = check(unsafe { syscall4(SYS_EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0) })?;
            Ok(Epoll { fd: fd as RawFd })
        }

        pub fn ctl(&self, op: i32, fd: RawFd, reg: Option<(usize, Interest)>) -> io::Result<()> {
            let ev = reg.map(|(key, interest)| {
                let mut bits = EPOLLRDHUP;
                if interest.readable {
                    bits |= EPOLLIN;
                }
                if interest.writable {
                    bits |= EPOLLOUT;
                }
                EpollEvent {
                    events: bits,
                    data: key as u64,
                }
            });
            let ptr = ev
                .as_ref()
                .map_or(std::ptr::null(), |e| e as *const EpollEvent);
            check(unsafe {
                syscall4(
                    SYS_EPOLL_CTL,
                    self.fd as usize,
                    op as usize,
                    fd as usize,
                    ptr as usize,
                )
            })?;
            Ok(())
        }

        /// Returns whether the waker fired among the events.
        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<bool> {
            let timeout_ms: isize = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as isize,
            };
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            let n = loop {
                let ret = unsafe {
                    syscall4(
                        SYS_EPOLL_WAIT,
                        self.fd as usize,
                        buf.as_mut_ptr() as usize,
                        buf.len(),
                        timeout_ms as usize,
                    )
                };
                match check(ret) {
                    Ok(n) => break n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            let mut woken = false;
            for ev in &buf[..n] {
                let key = ev.data as usize;
                if key == WAKE_KEY {
                    woken = true;
                    continue;
                }
                let bits = ev.events;
                out.push(Event {
                    key,
                    readable: bits & (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(woken)
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe {
                let _ = syscall4(SYS_CLOSE, self.fd as usize, 0, 0, 0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::{Duration, Instant};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn readable_when_bytes_arrive() {
        let poller = Poller::new().unwrap();
        let (a, mut b) = pair();
        poller.add(a.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(
            events.iter().all(|e| e.key != 7 || !e.readable) || cfg!(not(target_os = "linux")),
            "no data yet"
        );

        b.write_all(b"ping").unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut seen = false;
        while Instant::now() < deadline && !seen {
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            seen = events.iter().any(|e| e.key == 7 && e.readable);
        }
        assert!(seen, "readable event must arrive");
        let mut buf = [0u8; 8];
        let n = (&a).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
    }

    #[test]
    fn writable_reported_for_fresh_socket() {
        let poller = Poller::new().unwrap();
        let (a, _b) = pair();
        poller.add(a.as_raw_fd(), 3, Interest::BOTH).unwrap();
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut seen = false;
        while Instant::now() < deadline && !seen {
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            seen = events.iter().any(|e| e.key == 3 && e.writable);
        }
        assert!(seen, "an empty send buffer is writable");
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let p2 = poller.clone();
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            p2.notify().unwrap();
        });
        let mut events = Vec::new();
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "notify must cut the wait short"
        );
        waker.join().unwrap();
        // The waker itself is never surfaced as an event.
        assert!(events.iter().all(|e| e.key != WAKE_KEY));
    }

    #[test]
    fn delete_stops_events() {
        let poller = Poller::new().unwrap();
        let (a, mut b) = pair();
        poller.add(a.as_raw_fd(), 9, Interest::READ).unwrap();
        poller.delete(a.as_raw_fd()).unwrap();
        b.write_all(b"x").unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        assert!(events.iter().all(|e| e.key != 9), "deleted fd still fires");
    }

    #[test]
    fn modify_changes_interest() {
        let poller = Poller::new().unwrap();
        let (a, mut b) = pair();
        poller.add(a.as_raw_fd(), 4, Interest::READ).unwrap();
        poller.modify(a.as_raw_fd(), 4, Interest::BOTH).unwrap();
        b.write_all(b"y").unwrap();
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut ok = false;
        while Instant::now() < deadline && !ok {
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            ok = events
                .iter()
                .any(|e| e.key == 4 && e.readable && e.writable);
        }
        assert!(ok, "both interests must be observable after modify");
    }
}

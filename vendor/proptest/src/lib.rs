//! Offline shim for `proptest`: the subset this workspace's property
//! tests use. The build container has no access to crates.io, so the
//! workspace vendors the few external crates it needs as minimal local
//! implementations (see `vendor/README.md`).
//!
//! Supported surface:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strat) {...} }`
//! * `prop_assert!` / `prop_assert_eq!` (with optional format messages)
//! * strategies: primitive ranges (`0..10u32`, `0.0..1.0f64`), `any::<T>()`,
//!   tuples up to 6 elements, `.prop_map(f)`, `Just`,
//!   `proptest::collection::vec(strategy, len_range)`
//!
//! Differences from upstream: no shrinking (failures print the full input
//! set and the case number instead), and the generator stream is derived
//! from the test's module path — stable across runs, different across
//! tests. Set `PROPTEST_CASES` to override the default case count.

use std::fmt;

pub use rand;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Failure raised by the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Deterministic per-test, per-case generator.
    pub struct TestRng(StdRng);

    impl TestRng {
        pub fn for_case(test_path: &str, case: u32) -> Self {
            // FNV-1a over the test path, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(
                h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        pub fn random_range<T, R>(&mut self, range: R) -> T
        where
            T: rand::SampleUniform,
            R: Into<rand::UniformRange<T>>,
        {
            self.0.random_range(range)
        }

        pub fn random<T: rand::SampleUniform>(&mut self) -> T {
            self.0.random()
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// A value generator (upstream's `Strategy`, minus shrinking).
    pub trait Strategy {
        type Value: Debug;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// `.prop_map` adaptor.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A constant strategy.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// `any::<T>()` marker strategy.
    pub struct Any<T>(PhantomData<T>);

    pub fn any<T>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_any {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_any!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.random()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// `Vec` strategy with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Define property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($items:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($items)* }
    };
    ($($items:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($items)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:pat in $strat:expr ),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                // Generate into a tuple so argument binders can be arbitrary
                // patterns, and snapshot before the body runs (it may move
                // its inputs).
                let __vals = ($(
                    $crate::strategy::Strategy::generate(&($strat), &mut __rng),
                )*);
                let __inputs = format!("{:#?}", &__vals);
                let ($($arg,)*) = __vals;
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = __result {
                    panic!(
                        "property `{}` failed at case {}: {}\ninputs: {}",
                        stringify!($name),
                        __case,
                        e,
                        __inputs
                    );
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(a, b)` / `prop_assert_eq!(a, b, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                a,
                b,
                format!($($fmt)+)
            )));
        }
    }};
}

/// `prop_assert_ne!(a, b)` with optional format message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                a,
                b,
                format!($($fmt)+)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0u32..10, (a, b) in (0.0..1.0f64, 5usize..9)) {
            prop_assert!(x < 10);
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert!((5..9).contains(&b), "b = {b}");
        }

        #[test]
        fn vec_and_map(
            v in collection::vec(any::<u8>(), 1..50),
            w in (0u64..100).prop_map(|n| n * 2),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            prop_assert_eq!(w % 2, 0);
            prop_assert_ne!(v.len(), 0);
        }

        #[test]
        fn early_return_ok_is_supported(n in 0u8..4) {
            if n > 0 {
                return Ok(());
            }
            prop_assert_eq!(n, 0, "only zero reaches here");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_case("some::test", 3);
        let mut b = TestRng::for_case("some::test", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("some::test", 4);
        assert_ne!(TestRng::for_case("some::test", 3).next_u64(), c.next_u64());
    }
}

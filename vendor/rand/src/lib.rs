//! Offline shim for `rand` 0.9: the subset this workspace uses —
//! `StdRng::seed_from_u64` plus `Rng::random_range` over primitive ranges.
//! The build container has no access to crates.io, so the workspace
//! vendors the few external crates it needs (see `vendor/README.md`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), which is explicitly allowed:
//! upstream documents `StdRng` streams as non-portable across versions.
//! Everything in this workspace treats seeded randomness as "arbitrary
//! but reproducible", never as a golden sequence.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Value generation (subset of `rand::Rng`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a range (panics if the range is empty).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: Into<UniformRange<T>>,
        Self: Sized,
    {
        let r = range.into();
        T::sample(self, &r)
    }

    /// Uniform sample of the full domain (`bool`, floats in `[0, 1)`).
    fn random<T: SampleUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_full(self)
    }
}

/// A closed-open or closed-closed range normalized for sampling.
pub struct UniformRange<T> {
    lo: T,
    hi: T,
    inclusive: bool,
}

impl<T: Copy> From<Range<T>> for UniformRange<T> {
    fn from(r: Range<T>) -> Self {
        UniformRange {
            lo: r.start,
            hi: r.end,
            inclusive: false,
        }
    }
}

impl<T: Copy> From<RangeInclusive<T>> for UniformRange<T> {
    fn from(r: RangeInclusive<T>) -> Self {
        UniformRange {
            lo: *r.start(),
            hi: *r.end(),
            inclusive: true,
        }
    }
}

/// Types samplable from a [`UniformRange`].
pub trait SampleUniform: Copy + PartialOrd {
    fn sample<R: Rng>(rng: &mut R, range: &UniformRange<Self>) -> Self;
    fn sample_full<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng>(rng: &mut R, range: &UniformRange<Self>) -> Self {
                let lo = range.lo as i128;
                let hi = range.hi as i128;
                let span = if range.inclusive { hi - lo + 1 } else { hi - lo };
                assert!(span > 0, "cannot sample empty range {lo}..{hi}");
                // Rejection-free Lemire-style reduction is overkill here;
                // 64 fresh bits modulo the span is fine for test workloads
                // (u64 → i128 zero-extends, so the remainder is in [0, span)).
                (lo + rng.next_u64() as i128 % span) as $t
            }

            fn sample_full<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng>(rng: &mut R, range: &UniformRange<Self>) -> Self {
                assert!(range.lo < range.hi || (range.inclusive && range.lo == range.hi),
                    "cannot sample empty float range");
                let unit = <$t>::sample_full(rng);
                range.lo + unit * (range.hi - range.lo)
            }

            fn sample_full<R: Rng>(rng: &mut R) -> Self {
                // 53 (resp. 24) high bits → uniform in [0, 1).
                (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

impl SampleUniform for bool {
    fn sample<R: Rng>(rng: &mut R, _range: &UniformRange<Self>) -> Self {
        Self::sample_full(rng)
    }

    fn sample_full<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// SplitMix64: seeds the main generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::*;

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: usize = r.random_range(1..16);
            assert!((1..16).contains(&n));
            let m: u64 = r.random_range(5..=5);
            assert_eq!(m, 5);
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut r = StdRng::seed_from_u64(9);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }
}

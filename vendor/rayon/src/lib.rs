//! Offline shim for `rayon`: the subset of the API this workspace uses,
//! backed by `std::thread::scope`. The build container has no access to
//! crates.io, so the workspace vendors the few external crates it needs
//! as minimal local implementations (see `vendor/README.md`).
//!
//! Provided: [`scope`] / [`Scope::spawn`], [`join`],
//! [`current_num_threads`], and [`ThreadPool`] /[`ThreadPoolBuilder`]
//! with `install` + `scope`. Unlike upstream there is no work-stealing
//! deque: every `spawn` is one OS thread, so callers fan out one task
//! per worker (a bounded number), never one task per item. All code in
//! this workspace follows that rule — `dm_core::parallel` chunks its
//! query batches into at most `num_threads` contiguous slices before
//! spawning.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Upstream returns this from `ThreadPoolBuilder::build`; the shim never
/// actually fails but keeps the type so call sites stay source-compatible.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

thread_local! {
    /// Logical pool width installed by [`ThreadPool::install`] on this
    /// thread; 0 means "not inside a pool" (fall back to the hardware).
    static INSTALLED_WIDTH: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Number of threads the current context should fan out to: the
/// installed pool's width inside [`ThreadPool::install`], otherwise the
/// hardware parallelism.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_WIDTH.with(|w| w.get());
    if installed > 0 {
        return installed;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A scope handed to tasks; `spawn` adds a task that may borrow from the
/// enclosing stack frame (everything outliving `'scope`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Run `f` on its own thread within the scope. The closure receives
    /// the scope again so tasks can spawn sub-tasks, like upstream.
    pub fn spawn<F>(&self, f: F)
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Create a scope whose spawned tasks all join before `scope` returns —
/// the structured fan-out primitive. Panics in tasks propagate to the
/// caller when the scope joins (std semantics; upstream also propagates).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Run both closures, potentially in parallel, and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        (ra, rb)
    })
}

/// A logical thread pool: it carries a width that [`install`]ed code
/// reads through [`current_num_threads`]. Threads are created per scope
/// (std scoped threads), not parked in a deque — adequate for the coarse
/// one-task-per-worker fan-outs this workspace performs.
///
/// [`install`]: ThreadPool::install
pub struct ThreadPool {
    num_threads: usize,
}

static NEXT_POOL_ID: AtomicUsize = AtomicUsize::new(1);

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` with this pool installed as the current context:
    /// [`current_num_threads`] inside `op` reports this pool's width.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_WIDTH.with(|w| w.set(self.0));
            }
        }
        let prev = INSTALLED_WIDTH.with(|w| w.replace(self.num_threads));
        let _restore = Restore(prev);
        op()
    }

    /// [`scope`] bound to this pool (tasks see the pool's width).
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
        R: Send,
    {
        self.install(|| scope(f))
    }
}

/// Builder matching the upstream entry point.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// 0 (the default) means "use the hardware parallelism".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        // Touch the id counter so pools are observably distinct objects
        // (upstream registries are; some diagnostics rely on it).
        let _ = NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed);
        let num_threads = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_joins_all_tasks() {
        let counter = AtomicU64::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn scope_tasks_can_borrow_and_mutate_disjoint_slices() {
        let mut data = vec![0u64; 64];
        let chunks: Vec<&mut [u64]> = data.chunks_mut(16).collect();
        scope(|s| {
            for (i, chunk) in chunks.into_iter().enumerate() {
                s.spawn(move |_| {
                    for v in chunk.iter_mut() {
                        *v = i as u64 + 1;
                    }
                });
            }
        });
        assert!(data[..16].iter().all(|&v| v == 1));
        assert!(data[48..].iter().all(|&v| v == 4));
    }

    #[test]
    fn nested_spawn_works() {
        let counter = AtomicU64::new(0);
        scope(|s| {
            s.spawn(|s2| {
                counter.fetch_add(1, Ordering::SeqCst);
                s2.spawn(|_| {
                    counter.fetch_add(10, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 11);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok".len());
        assert_eq!((a, b), (4, 2));
    }

    #[test]
    fn pool_width_is_visible_inside_install() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 3);
        // Outside install the hardware default is back.
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn install_restores_width_on_unwind() {
        let pool = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| panic!("boom"))
        }));
        assert!(r.is_err());
        let installed = INSTALLED_WIDTH.with(|w| w.get());
        assert_eq!(installed, 0, "width must be restored after a panic");
    }

    #[test]
    fn zero_threads_resolves_to_hardware() {
        let pool = ThreadPoolBuilder::new().build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }
}
